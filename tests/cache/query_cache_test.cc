// QueryCache unit tests: both tiers' round trips, LRU-by-bytes eviction,
// invalidation, key canonicalization, checkpoint probing math, and the
// cache.* counter discipline (instance stats + per-thread counters).
#include "cache/query_cache.h"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "graph/dijkstra.h"
#include "graph/nn_stream.h"
#include "obs/metrics.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

struct StreamFixture {
  StreamFixture(RoadNetwork n, std::vector<Location> objs)
      : network(std::move(n)),
        graph_buffer(&graph_disk, 512),
        index_buffer(&index_disk, 512),
        pager(&network, &graph_buffer),
        mapping(&network, &index_buffer, objs) {}

  RoadNetwork network;
  InMemoryDiskManager graph_disk, index_disk;
  BufferManager graph_buffer, index_buffer;
  GraphPager pager;
  SpatialMapping mapping;
};

// Bytes one memo entry occupies — probed, because the accounting constant
// is private to the implementation.
std::size_t MemoEntryBytes() {
  QueryCache probe;
  probe.StoreDistance(Location{0, 0.0}, 0, 1.0);
  return probe.bytes();
}

TEST(QueryCacheTest, MemoRoundTripCountsHitsAndMisses) {
  QueryCache cache;
  const Location source{3, 0.25};

  EXPECT_FALSE(cache.FindDistance(source, 7).has_value());
  cache.StoreDistance(source, 7, 1.5);
  const auto found = cache.FindDistance(source, 7);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 1.5);
  // Distinct object id on the same source is a different memo line.
  EXPECT_FALSE(cache.FindDistance(source, 8).has_value());

  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.memo_misses, 2u);
  EXPECT_EQ(stats.memo_inserts, 1u);
  EXPECT_EQ(stats.wavefront_hits, 0u);
  EXPECT_EQ(stats.wavefront_misses, 0u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(QueryCacheTest, LayoutEpochMismatchMissesAndDropsEntry) {
  QueryCache cache;
  const Location source{3, 0.25};
  cache.StoreDistance(source, 7, 1.5, /*layout_epoch=*/4);
  ASSERT_TRUE(cache.FindDistance(source, 7, 4).has_value());

  // A find under a different layout epoch is a miss and evicts the entry.
  const std::size_t bytes_before = cache.bytes();
  EXPECT_FALSE(cache.FindDistance(source, 7, 5).has_value());
  EXPECT_LT(cache.bytes(), bytes_before);
  // The entry is gone even for its original epoch.
  EXPECT_FALSE(cache.FindDistance(source, 7, 4).has_value());

  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.memo_misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(QueryCacheTest, WavefrontLayoutEpochMismatchMissesAndDrops) {
  StreamFixture f(testing::MakeGridNetwork(4),
                  {Location{0, 0.0}, Location{5, 0.0}});
  QueryCache cache;
  const Location source{0, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  stream.Next();
  cache.StoreWavefront(source, stream.MakeSnapshot(), /*layout_epoch=*/9);
  EXPECT_NE(cache.FindWavefront(source, 9), nullptr);
  EXPECT_EQ(cache.FindWavefront(source, 10), nullptr);
  EXPECT_EQ(cache.FindWavefront(source, 9), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(QueryCacheTest, NegativeZeroOffsetSharesEntry) {
  QueryCache cache;
  cache.StoreDistance(Location{2, 0.0}, 4, 2.0);
  const auto found = cache.FindDistance(Location{2, -0.0}, 4);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2.0);
}

TEST(QueryCacheTest, WavefrontRoundTripResumesIdentically) {
  RoadNetwork network = GenerateNetwork({.node_count = 120,
                                         .edge_count = 170,
                                         .seed = 51});
  auto objects = GenerateObjects(network, 25, 13);
  StreamFixture f(std::move(network), objects);
  const Location source{1, 0.0};

  std::vector<std::pair<ObjectId, Dist>> cold;
  NetworkNnStream warmup(&f.pager, &f.mapping, source);
  for (int i = 0; i < 10; ++i) {
    const auto visit = warmup.Next();
    ASSERT_TRUE(visit.has_value());
    cold.push_back({visit->object, visit->distance});
  }

  QueryCache cache;
  cache.StoreWavefront(source, warmup.MakeSnapshot());
  EXPECT_EQ(cache.stats().wavefront_inserts, 1u);

  const QueryCache::WavefrontPtr snapshot = cache.FindWavefront(source);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(cache.stats().wavefront_hits, 1u);

  // The cached snapshot resumes a stream that replays the cold prefix
  // bitwise.
  NetworkNnStream resumed(&f.pager, &f.mapping, source, snapshot.get());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    const auto visit = resumed.Next();
    ASSERT_TRUE(visit.has_value());
    EXPECT_EQ(visit->object, cold[i].first) << "position " << i;
    EXPECT_EQ(visit->distance, cold[i].second) << "position " << i;
  }

  // A different source is a miss.
  EXPECT_EQ(cache.FindWavefront(Location{0, 0.0}), nullptr);
  EXPECT_EQ(cache.stats().wavefront_misses, 1u);
}

TEST(QueryCacheTest, HeldSnapshotSurvivesInvalidate) {
  RoadNetwork network = testing::MakeGridNetwork(4);
  std::vector<Location> objects = {{0, 0.0}, {5, 0.0}};
  StreamFixture f(std::move(network), objects);
  const Location source{0, 0.0};

  NetworkNnStream stream(&f.pager, &f.mapping, source);
  while (stream.Next()) {
  }
  QueryCache cache;
  cache.StoreWavefront(source, stream.MakeSnapshot());
  cache.StoreDistance(source, 0, 0.5);

  const QueryCache::WavefrontPtr held = cache.FindWavefront(source);
  ASSERT_NE(held, nullptr);
  const std::size_t held_objects = held->object_best.size();

  EXPECT_EQ(cache.epoch(), 0u);
  cache.Invalidate();
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.FindWavefront(source), nullptr);
  EXPECT_FALSE(cache.FindDistance(source, 0).has_value());

  // The reader's shared_ptr keeps the evicted snapshot alive and intact.
  EXPECT_EQ(held->object_best.size(), held_objects);
  EXPECT_EQ(held_objects, 2u);
}

TEST(QueryCacheTest, LruEvictionRespectsByteBudget) {
  const std::size_t entry = MemoEntryBytes();
  QueryCacheConfig config;
  config.shard_count = 1;
  config.max_bytes = entry * 3 + entry / 2;  // room for exactly 3 entries
  QueryCache cache(config);

  const Location source{0, 0.0};
  for (ObjectId id = 0; id < 10; ++id) {
    cache.StoreDistance(source, id, static_cast<Dist>(id));
  }
  EXPECT_LE(cache.bytes(), config.max_bytes);
  EXPECT_EQ(cache.stats().evictions, 7u);
  EXPECT_EQ(cache.stats().memo_inserts, 10u);

  // The three most recent entries survive; the oldest were evicted.
  EXPECT_TRUE(cache.FindDistance(source, 9).has_value());
  EXPECT_TRUE(cache.FindDistance(source, 8).has_value());
  EXPECT_TRUE(cache.FindDistance(source, 7).has_value());
  EXPECT_FALSE(cache.FindDistance(source, 0).has_value());
  EXPECT_FALSE(cache.FindDistance(source, 6).has_value());
}

TEST(QueryCacheTest, FindRefreshesLruRecency) {
  const std::size_t entry = MemoEntryBytes();
  QueryCacheConfig config;
  config.shard_count = 1;
  config.max_bytes = entry * 3;
  QueryCache cache(config);

  const Location source{0, 0.0};
  cache.StoreDistance(source, 0, 0.0);
  cache.StoreDistance(source, 1, 1.0);
  cache.StoreDistance(source, 2, 2.0);
  // Touch the oldest entry, then overflow: the untouched middle entry is
  // now least-recently used and must be the victim.
  ASSERT_TRUE(cache.FindDistance(source, 0).has_value());
  cache.StoreDistance(source, 3, 3.0);

  EXPECT_TRUE(cache.FindDistance(source, 0).has_value());
  EXPECT_FALSE(cache.FindDistance(source, 1).has_value());
  EXPECT_TRUE(cache.FindDistance(source, 2).has_value());
  EXPECT_TRUE(cache.FindDistance(source, 3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(QueryCacheTest, ReplacingAnEntryDoesNotLeakBytes) {
  QueryCache cache;
  const Location source{1, 0.5};
  cache.StoreDistance(source, 2, 1.0);
  const std::size_t bytes_after_first = cache.bytes();
  cache.StoreDistance(source, 2, 1.0);
  EXPECT_EQ(cache.bytes(), bytes_after_first);
  EXPECT_EQ(cache.stats().memo_inserts, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(QueryCacheTest, OversizedWavefrontIsRejected) {
  RoadNetwork network = GenerateNetwork({.node_count = 200,
                                         .edge_count = 280,
                                         .seed = 53});
  auto objects = GenerateObjects(network, 40, 19);
  StreamFixture f(std::move(network), objects);
  const Location source{0, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  while (stream.Next()) {
  }
  NetworkNnStream::Snapshot snapshot = stream.MakeSnapshot();

  QueryCacheConfig config;
  config.shard_count = 1;
  config.max_bytes = 256;  // far below any 200-node snapshot
  ASSERT_GT(snapshot.bytes(), config.max_bytes);
  QueryCache cache(config);
  cache.StoreWavefront(source, std::move(snapshot));

  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().wavefront_inserts, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.FindWavefront(source), nullptr);
}

TEST(QueryCacheTest, ProbeCheckpointBoundsAndExactness) {
  // Line of 5 nodes (4 edges of length 0.25); source sits on node 0.
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 512);
  GraphPager pager(&network, &buffer);
  const Location source{0, 0.0};

  DijkstraSearch search(&pager, source);
  search.NextSettled();  // node 0 at 0
  search.NextSettled();  // node 1 at len
  const DijkstraSearch::Checkpoint checkpoint = search.MakeCheckpoint();
  const Dist radius = CheckpointRadius(checkpoint);
  EXPECT_DOUBLE_EQ(radius, 2 * len);  // node 2 is the frontier minimum

  // Both endpoints settled: exact, and the same-edge direct path wins.
  const WavefrontProbe settled = ProbeCheckpoint(
      network, checkpoint, radius, source, Location{0, len * 0.5});
  EXPECT_TRUE(settled.exact);
  EXPECT_DOUBLE_EQ(settled.bound, len * 0.5);

  // One endpoint settled, and its route provably beats anything through
  // the unsettled frontier: still exact.
  const WavefrontProbe one_side = ProbeCheckpoint(
      network, checkpoint, radius, source, Location{1, len * 0.2});
  EXPECT_TRUE(one_side.exact);
  EXPECT_DOUBLE_EQ(one_side.bound, len * 1.2);

  // Both endpoints beyond the frontier: an admissible (non-exact) lower
  // bound derived from the radius.
  const Location far{3, len * 0.4};
  const WavefrontProbe beyond =
      ProbeCheckpoint(network, checkpoint, radius, source, far);
  EXPECT_FALSE(beyond.exact);
  EXPECT_DOUBLE_EQ(beyond.bound, 2 * len + len * 0.4);
  DijkstraSearch oracle(&pager, source);
  EXPECT_LE(beyond.bound, oracle.DistanceTo(far));
}

TEST(QueryCacheTest, ExhaustedCheckpointProbesExactlyEverywhere) {
  RoadNetwork network = GenerateNetwork({.node_count = 80,
                                         .edge_count = 120,
                                         .seed = 59});
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 512);
  GraphPager pager(&network, &buffer);
  const Location source{2, network.EdgeAt(2).length * 0.5};

  DijkstraSearch search(&pager, source);
  while (search.NextSettled()) {
  }
  const DijkstraSearch::Checkpoint checkpoint = search.MakeCheckpoint();
  const Dist radius = CheckpointRadius(checkpoint);
  EXPECT_EQ(radius, kInfDist);

  for (const EdgeId edge : {EdgeId{0}, EdgeId{17}, EdgeId{63}, EdgeId{119}}) {
    const Location target{edge, network.EdgeAt(edge).length * 0.25};
    const WavefrontProbe probe =
        ProbeCheckpoint(network, checkpoint, radius, source, target);
    EXPECT_TRUE(probe.exact) << "edge " << edge;
    EXPECT_EQ(probe.bound, search.DistanceTo(target)) << "edge " << edge;
  }
}

TEST(QueryCacheTest, FindsBumpThreadLocalCounters) {
  QueryCache cache;
  const obs::ThreadCounters before = obs::ThreadLocalCounters();

  cache.FindWavefront(Location{0, 0.0});                 // miss
  cache.StoreDistance(Location{0, 0.0}, 1, 1.0);
  cache.FindDistance(Location{0, 0.0}, 1);               // hit
  cache.FindDistance(Location{0, 0.0}, 2);               // miss

  const obs::ThreadCounters& after = obs::ThreadLocalCounters();
  EXPECT_EQ(after.cache_wavefront_hits - before.cache_wavefront_hits, 0u);
  EXPECT_EQ(after.cache_wavefront_misses - before.cache_wavefront_misses,
            1u);
  EXPECT_EQ(after.cache_memo_hits - before.cache_memo_hits, 1u);
  EXPECT_EQ(after.cache_memo_misses - before.cache_memo_misses, 1u);
}

}  // namespace
}  // namespace msq
