// Death tests: invariant violations must abort loudly rather than corrupt
// query results (common/check.h's contract).
#include "common/check.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(MSQ_CHECK(1 == 2), "MSQ_CHECK failed");
}

TEST(CheckDeathTest, CheckMsgIncludesExplanation) {
  EXPECT_DEATH(MSQ_CHECK_MSG(false, "context %d", 42), "context 42");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  MSQ_CHECK(true);
  MSQ_CHECK_MSG(1 + 1 == 2, "never printed");
}

TEST(CheckDeathTest, PageWriterOverflowAborts) {
  EXPECT_DEATH(
      {
        Page page;
        PageWriter writer(&page);
        for (std::size_t i = 0; i <= kPageSize / 8; ++i) {
          writer.Write<std::uint64_t>(i);
        }
      },
      "MSQ_CHECK failed");
}

TEST(CheckDeathTest, DiskReadOutOfRangeAborts) {
  EXPECT_DEATH(
      {
        InMemoryDiskManager disk;
        Page page;
        disk.Read(5, &page);
      },
      "MSQ_CHECK failed");
}

TEST(CheckDeathTest, DijkstraRejectsInvalidSource) {
  const auto run = [] {
    RoadNetwork network = testing::MakeLineNetwork(3);
    InMemoryDiskManager disk;
    BufferManager buffer(&disk, 16);
    GraphPager pager(&network, &buffer);
    Location bad;
    bad.edge = 99;
    DijkstraSearch search(&pager, bad);
  };
  EXPECT_DEATH(run(), "MSQ_CHECK failed");
}

TEST(CheckDeathTest, QueryValidationRejectsEmptySources) {
  const auto run = [] {
    auto workload = testing::MakeRandomWorkload(50, 60, 0.5, 1);
    SkylineQuerySpec spec;  // no sources
    ValidateQuery(workload->dataset(), spec);
  };
  EXPECT_DEATH(run(), "at least one source");
}

TEST(CheckDeathTest, QueryValidationRejectsInvalidLocation) {
  const auto run = [] {
    auto workload = testing::MakeRandomWorkload(50, 60, 0.5, 1);
    SkylineQuerySpec spec;
    Location bad;
    bad.edge = 9999;
    spec.sources.push_back(bad);
    ValidateQuery(workload->dataset(), spec);
  };
  EXPECT_DEATH(run(), "invalid");
}

}  // namespace
}  // namespace msq
