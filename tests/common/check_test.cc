// Death tests: invariant violations must abort loudly rather than corrupt
// query results (common/check.h's contract) — while environmental failures
// (out-of-range page ids, invalid query input) surface as Status errors.
#include "common/check.h"

#include "common/status.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(MSQ_CHECK(1 == 2), "MSQ_CHECK failed");
}

TEST(CheckDeathTest, CheckMsgIncludesExplanation) {
  EXPECT_DEATH(MSQ_CHECK_MSG(false, "context %d", 42), "context 42");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  MSQ_CHECK(true);
  MSQ_CHECK_MSG(1 + 1 == 2, "never printed");
}

TEST(CheckDeathTest, PageWriterOverflowAborts) {
  EXPECT_DEATH(
      {
        Page page;
        PageWriter writer(&page);
        for (std::size_t i = 0; i <= kPageSize / 8; ++i) {
          writer.Write<std::uint64_t>(i);
        }
      },
      "MSQ_CHECK failed");
}

TEST(CheckTest, DiskReadOutOfRangeIsAStatusError) {
  InMemoryDiskManager disk;
  Page page;
  const Status status = disk.Read(5, &page);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckDeathTest, DijkstraRejectsInvalidSource) {
  const auto run = [] {
    RoadNetwork network = testing::MakeLineNetwork(3);
    InMemoryDiskManager disk;
    BufferManager buffer(&disk, 16);
    GraphPager pager(&network, &buffer);
    Location bad;
    bad.edge = 99;
    DijkstraSearch search(&pager, bad);
  };
  EXPECT_DEATH(run(), "MSQ_CHECK failed");
}

TEST(CheckTest, QueryValidationRejectsEmptySources) {
  auto workload = testing::MakeRandomWorkload(50, 60, 0.5, 1);
  SkylineQuerySpec spec;  // no sources
  const Status status = ValidateQuery(workload->dataset(), spec);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("at least one source"), std::string::npos);
}

TEST(CheckTest, QueryValidationRejectsInvalidLocation) {
  auto workload = testing::MakeRandomWorkload(50, 60, 0.5, 1);
  SkylineQuerySpec spec;
  Location bad;
  bad.edge = 9999;
  spec.sources.push_back(bad);
  const Status status = ValidateQuery(workload->dataset(), spec);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("invalid"), std::string::npos);
}

}  // namespace
}  // namespace msq
