#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleCoversRange) {
  Rng rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedHitsAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextInRange(5, 5), 5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

}  // namespace
}  // namespace msq
