#include "core/aggregate_nn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing_support.h"

namespace msq {
namespace {

TEST(AggregateScoreTest, SumAndMax) {
  EXPECT_DOUBLE_EQ(AggregateScore(AggregateFn::kSum, {1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(AggregateScore(AggregateFn::kMax, {1, 5, 3}), 5.0);
  EXPECT_DOUBLE_EQ(AggregateScore(AggregateFn::kSum, {}), 0.0);
}

TEST(AggregateNnTest, IerMatchesNaiveSum) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.5, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto naive = RunAggregateNnNaive(workload->dataset(), spec,
                                           AggregateFn::kSum, 5);
    const auto ier = RunAggregateNnIer(workload->dataset(), spec,
                                       AggregateFn::kSum, 5);
    ASSERT_EQ(ier.entries.size(), naive.entries.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ier.entries.size(); ++i) {
      // Ties can permute objects; scores must agree position-wise.
      EXPECT_NEAR(ier.entries[i].score, naive.entries[i].score, 1e-9)
          << "seed " << seed << " rank " << i;
    }
  }
}

TEST(AggregateNnTest, IerMatchesNaiveMax) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.5, seed + 20);
    const auto spec = workload->SampleQuery(4, seed);
    const auto naive = RunAggregateNnNaive(workload->dataset(), spec,
                                           AggregateFn::kMax, 3);
    const auto ier = RunAggregateNnIer(workload->dataset(), spec,
                                       AggregateFn::kMax, 3);
    ASSERT_EQ(ier.entries.size(), naive.entries.size());
    for (std::size_t i = 0; i < ier.entries.size(); ++i) {
      EXPECT_NEAR(ier.entries[i].score, naive.entries[i].score, 1e-9);
    }
  }
}

TEST(AggregateNnTest, ScoresAscending) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 11);
  const auto spec = workload->SampleQuery(3, 2);
  const auto result = RunAggregateNnIer(workload->dataset(), spec,
                                        AggregateFn::kSum, 10);
  for (std::size_t i = 1; i < result.entries.size(); ++i) {
    EXPECT_LE(result.entries[i - 1].score,
              result.entries[i].score + 1e-12);
  }
}

TEST(AggregateNnTest, ScoreConsistentWithDistances) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 13);
  const auto spec = workload->SampleQuery(3, 4);
  const auto result = RunAggregateNnIer(workload->dataset(), spec,
                                        AggregateFn::kSum, 5);
  for (const auto& entry : result.entries) {
    EXPECT_NEAR(entry.score, AggregateScore(AggregateFn::kSum,
                                            entry.distances),
                1e-12);
    EXPECT_EQ(entry.distances.size(), spec.sources.size());
  }
}

TEST(AggregateNnTest, KLargerThanObjects) {
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{0, len / 2}, {2, len / 2}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}, {2, len}};
  const auto result = RunAggregateNnIer(workload->dataset(), spec,
                                        AggregateFn::kSum, 10);
  EXPECT_EQ(result.entries.size(), 2u);
}

TEST(AggregateNnTest, SingleQueryPointIsNetworkNn) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 17);
  const auto spec = workload->SampleQuery(1, 3);
  const auto ann = RunAggregateNnIer(workload->dataset(), spec,
                                     AggregateFn::kSum, 1);
  const auto naive = RunAggregateNnNaive(workload->dataset(), spec,
                                         AggregateFn::kSum, 1);
  ASSERT_EQ(ann.entries.size(), 1u);
  EXPECT_NEAR(ann.entries[0].score, naive.entries[0].score, 1e-9);
}

TEST(AggregateNnTest, IerExaminesFewerCandidates) {
  auto workload = testing::MakeRandomWorkload(400, 560, 1.0, 19);
  const auto spec = workload->SampleQuery(3, 5);
  const auto ier = RunAggregateNnIer(workload->dataset(), spec,
                                     AggregateFn::kSum, 3);
  EXPECT_LT(ier.stats.candidate_count, workload->objects().size());
}

TEST(AggregateNnTest, UnreachableObjectsExcluded) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.4, 0});
  network.AddNode({0.6, 0.5});
  network.AddNode({1.0, 0.5});
  const EdgeId mainland = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  auto workload = testing::MakeWorkload(
      std::move(network), {{mainland, 0.2}, {island, 0.2}});
  SkylineQuerySpec spec;
  spec.sources = {{mainland, 0.0}};
  const auto result = RunAggregateNnIer(workload->dataset(), spec,
                                        AggregateFn::kSum, 5);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].object, 0u);
}

// Property sweep: IER equals the naive oracle across aggregate functions,
// k values, query counts, and seeds.
struct AnnSweepParam {
  std::uint64_t seed;
  AggregateFn fn;
  std::size_t k;
  std::size_t query_count;
};

void PrintTo(const AnnSweepParam& p, std::ostream* os) {
  *os << "seed" << p.seed << "_fn"
      << (p.fn == AggregateFn::kSum ? "sum" : "max") << "_k" << p.k << "_q"
      << p.query_count;
}

class AggregateNnSweepTest
    : public ::testing::TestWithParam<AnnSweepParam> {};

TEST_P(AggregateNnSweepTest, IerMatchesNaive) {
  const AnnSweepParam& p = GetParam();
  auto workload = testing::MakeRandomWorkload(220, 300, 0.5, p.seed);
  const auto spec = workload->SampleQuery(p.query_count, p.seed + 3);
  const auto naive =
      RunAggregateNnNaive(workload->dataset(), spec, p.fn, p.k);
  const auto ier = RunAggregateNnIer(workload->dataset(), spec, p.fn, p.k);
  ASSERT_EQ(ier.entries.size(), naive.entries.size());
  for (std::size_t i = 0; i < ier.entries.size(); ++i) {
    EXPECT_NEAR(ier.entries[i].score, naive.entries[i].score, 1e-9)
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateNnSweepTest,
    ::testing::Values(AnnSweepParam{201, AggregateFn::kSum, 1, 2},
                      AnnSweepParam{202, AggregateFn::kSum, 5, 3},
                      AnnSweepParam{203, AggregateFn::kSum, 20, 4},
                      AnnSweepParam{204, AggregateFn::kMax, 1, 2},
                      AnnSweepParam{205, AggregateFn::kMax, 5, 3},
                      AnnSweepParam{206, AggregateFn::kMax, 20, 5},
                      AnnSweepParam{207, AggregateFn::kSum, 3, 1},
                      AnnSweepParam{208, AggregateFn::kMax, 3, 1}));

}  // namespace
}  // namespace msq
