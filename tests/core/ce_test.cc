#include "core/ce.h"

#include <gtest/gtest.h>

#include "core/naive.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(CeTest, SingleQueryPointNearestObjects) {
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(
      std::move(network), {{0, len * 0.5}, {2, len * 0.5}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
}

TEST(CeTest, MatchesNaiveOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.4, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunCe(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(CeTest, VectorsMatchNaive) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 42);
  const auto spec = workload->SampleQuery(2, 9);
  const auto expected = RunNaive(workload->dataset(), spec);
  const auto got = RunCe(workload->dataset(), spec);
  ASSERT_EQ(got.skyline.size(), expected.skyline.size());
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    // Entries in both results are keyed by object; find matching.
    const auto& entry = got.skyline[i];
    bool found = false;
    for (const auto& want : expected.skyline) {
      if (want.object != entry.object) continue;
      found = true;
      ASSERT_EQ(entry.vector.size(), want.vector.size());
      for (std::size_t d = 0; d < entry.vector.size(); ++d) {
        EXPECT_NEAR(entry.vector[d], want.vector[d], 1e-9);
      }
    }
    EXPECT_TRUE(found) << "object " << entry.object;
  }
}

TEST(CeTest, CandidatesAreSupersetOfSkyline) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 11);
  const auto spec = workload->SampleQuery(4, 3);
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_GE(result.stats.candidate_count, result.skyline.size());
  EXPECT_LE(result.stats.candidate_count, workload->objects().size());
}

TEST(CeTest, ProgressiveReportingOrderedBySourceVisits) {
  auto workload = testing::MakeRandomWorkload(200, 260, 0.5, 19);
  const auto spec = workload->SampleQuery(2, 5);
  std::vector<ObjectId> reported;
  const auto result = RunCe(workload->dataset(), spec,
                            [&](const SkylineEntry& entry) {
                              reported.push_back(entry.object);
                            });
  // Progressive reports may include tie-filtered extras but never fewer.
  EXPECT_GE(reported.size(), result.skyline.size());
}

TEST(CeTest, StaticAttributesSupported) {
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(150, 200, 0.5, seed,
                                                /*attr_dims=*/1);
    const auto spec = workload->SampleQuery(2, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunCe(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(CeTest, DisconnectedComponentHandled) {
  // Query and one object on the mainland, one object on an island.
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.4, 0});
  network.AddNode({0.6, 0.5});
  network.AddNode({1.0, 0.5});
  const EdgeId mainland = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  auto workload = testing::MakeWorkload(
      std::move(network), {{mainland, 0.2}, {island, 0.2}});
  SkylineQuerySpec spec;
  spec.sources = {{mainland, 0.0}};
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
}

TEST(CeTest, InitialResponseNotAfterTotal) {
  auto workload = testing::MakeRandomWorkload(300, 400, 0.5, 33);
  const auto spec = workload->SampleQuery(3, 7);
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_LE(result.stats.initial_seconds,
            result.stats.total_seconds + 1e-9);
}

TEST(CeTest, FirstReportIsFirstObjectVisitedByAllQueryPoints) {
  // Paper Section 4.1 / Figure 1: the filtering phase ends at the first
  // object visited by ALL query points, and that object is the first
  // skyline point. On a line with queries at both ends and objects at
  // offsets 0.1 / 0.5 / 0.9, the middle object completes first under
  // round-robin expansion.
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;  // 0.25
  auto workload = testing::MakeWorkload(
      std::move(network),
      {{0, len * 0.4},    // a: 0.1 from the left end
       {1, len * 1.0},    // b: 0.5 (middle)
       {3, len * 0.6}});  // c: 0.9
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}, {3, len}};

  std::vector<ObjectId> reported;
  const auto result = RunCe(workload->dataset(), spec,
                            [&](const SkylineEntry& e) {
                              reported.push_back(e.object);
                            });
  ASSERT_EQ(result.skyline.size(), 3u);  // all three are skyline
  EXPECT_EQ(reported.front(), 1u);       // the middle object b
  // All three objects were candidates: each was visited before the first
  // common visit completed.
  EXPECT_EQ(result.stats.candidate_count, 3u);
}

TEST(CeTest, ObjectsBeyondFilteringCirclesNeverCandidates) {
  // Figure 1's p4: an object farther from every query point than the
  // first common visit is never fetched into C.
  RoadNetwork network = testing::MakeLineNetwork(9);
  const Dist len = network.EdgeAt(0).length;  // 0.125
  auto workload = testing::MakeWorkload(
      std::move(network),
      {{3, len * 0.5},    // near the middle: first common visit
       {7, len * 0.9}});  // far right, outside both circles
  SkylineQuerySpec spec;
  spec.sources = {{2, 0.0}, {4, len}};  // nodes 2 and 5, middle region
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
  EXPECT_EQ(result.stats.candidate_count, 1u);
}

TEST(CeTest, PageAccessesAtLeastMisses) {
  auto workload = testing::MakeRandomWorkload(300, 400, 0.5, 51);
  workload->ResetBuffers();
  const auto spec = workload->SampleQuery(3, 1);
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_GE(result.stats.network_page_accesses, result.stats.network_pages);
}

TEST(CeTest, NetworkPagesCounted) {
  auto workload = testing::MakeRandomWorkload(400, 550, 0.5, 21);
  workload->ResetBuffers();
  const auto spec = workload->SampleQuery(2, 2);
  const auto result = RunCe(workload->dataset(), spec);
  EXPECT_GT(result.stats.network_pages, 0u);
  EXPECT_GT(result.stats.settled_nodes, 0u);
}

}  // namespace
}  // namespace msq
