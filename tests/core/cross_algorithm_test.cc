// Property suite: all algorithms must agree with the naive oracle across a
// parameter sweep of workload shapes (seeds x |Q| x ω x density x static
// attributes). This is the library's primary correctness net.
#include <tuple>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "testing_support.h"

namespace msq {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t query_count;
  double object_density;
  std::size_t nodes;
  std::size_t edges;
  std::size_t attr_dims;
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << "seed" << p.seed << "_q" << p.query_count << "_w"
      << p.object_density << "_n" << p.nodes << "_m" << p.edges << "_a"
      << p.attr_dims;
}

class CrossAlgorithmTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrossAlgorithmTest, AllAlgorithmsMatchOracle) {
  const SweepParam& p = GetParam();
  auto workload = testing::MakeRandomWorkload(p.nodes, p.edges,
                                              p.object_density, p.seed,
                                              p.attr_dims);
  const auto spec = workload->SampleQuery(p.query_count, p.seed + 1000);
  const auto expected =
      testing::SkylineIds(RunSkylineQuery(Algorithm::kNaive,
                                          workload->dataset(), spec));
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kEdcIncremental,
        Algorithm::kLbc, Algorithm::kLbcNoPlb}) {
    const auto got = testing::SkylineIds(
        RunSkylineQuery(algorithm, workload->dataset(), spec));
    EXPECT_EQ(got, expected) << AlgorithmName(algorithm);
  }
}

TEST_P(CrossAlgorithmTest, CandidateContainmentLbcWithinEdc) {
  // Section 5: C(LBC) ⊆ C(EDC) — LBC's candidate *space* is bounded by
  // network skyline points, EDC's by shifted Euclidean skyline points.
  // Operationally LBC's step-1.2 stop rule can fetch one extra Euclidean
  // NN per network-NN confirmation round before the rule fires, so the
  // measured count is allowed that additive overshoot on top of the
  // geometric containment.
  const SweepParam& p = GetParam();
  auto workload = testing::MakeRandomWorkload(p.nodes, p.edges,
                                              p.object_density, p.seed,
                                              p.attr_dims);
  const auto spec = workload->SampleQuery(p.query_count, p.seed + 1000);
  const auto lbc =
      RunSkylineQuery(Algorithm::kLbc, workload->dataset(), spec);
  const auto edc =
      RunSkylineQuery(Algorithm::kEdc, workload->dataset(), spec);
  const std::size_t slack = 1 + lbc.stats.skyline_size;
  EXPECT_LE(lbc.stats.candidate_count, edc.stats.candidate_count + slack);
}

INSTANTIATE_TEST_SUITE_P(
    QuerySizes, CrossAlgorithmTest,
    ::testing::Values(SweepParam{1, 1, 0.5, 200, 280, 0},
                      SweepParam{2, 2, 0.5, 200, 280, 0},
                      SweepParam{3, 4, 0.5, 200, 280, 0},
                      SweepParam{4, 6, 0.5, 200, 280, 0},
                      SweepParam{5, 9, 0.5, 200, 280, 0}));

INSTANTIATE_TEST_SUITE_P(
    ObjectDensities, CrossAlgorithmTest,
    ::testing::Values(SweepParam{11, 3, 0.05, 250, 340, 0},
                      SweepParam{12, 3, 0.2, 250, 340, 0},
                      SweepParam{13, 3, 0.5, 250, 340, 0},
                      SweepParam{14, 3, 1.0, 250, 340, 0},
                      SweepParam{15, 3, 2.0, 250, 340, 0}));

INSTANTIATE_TEST_SUITE_P(
    NetworkDensities, CrossAlgorithmTest,
    ::testing::Values(
        // Sparse (tree-like, high detour δ) through dense.
        SweepParam{21, 3, 0.5, 300, 299, 0},
        SweepParam{22, 3, 0.5, 300, 330, 0},
        SweepParam{23, 3, 0.5, 300, 400, 0},
        SweepParam{24, 3, 0.5, 300, 550, 0},
        SweepParam{25, 3, 0.5, 300, 750, 0}));

INSTANTIATE_TEST_SUITE_P(
    StaticAttributes, CrossAlgorithmTest,
    ::testing::Values(SweepParam{31, 2, 0.5, 200, 270, 1},
                      SweepParam{32, 3, 0.5, 200, 270, 1},
                      SweepParam{33, 2, 0.5, 200, 270, 2},
                      SweepParam{34, 3, 0.3, 200, 270, 3}));

INSTANTIATE_TEST_SUITE_P(
    Seeds, CrossAlgorithmTest,
    ::testing::Values(SweepParam{101, 4, 0.5, 240, 330, 0},
                      SweepParam{102, 4, 0.5, 240, 330, 0},
                      SweepParam{103, 4, 0.5, 240, 330, 0},
                      SweepParam{104, 4, 0.5, 240, 330, 0},
                      SweepParam{105, 4, 0.5, 240, 330, 0},
                      SweepParam{106, 4, 0.5, 240, 330, 0},
                      SweepParam{107, 4, 0.5, 240, 330, 0},
                      SweepParam{108, 4, 0.5, 240, 330, 0}));

}  // namespace
}  // namespace msq
