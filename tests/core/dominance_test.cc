#include "core/dominance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"

namespace msq {
namespace {

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(Dominates({1, 2}, {2, 3}));
  EXPECT_TRUE(Dominates({1, 3}, {2, 3}));  // tie in one dim, strict other
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}));  // equal: not dominance
  EXPECT_FALSE(Dominates({1, 4}, {2, 3}));  // incomparable
  EXPECT_FALSE(Dominates({2, 3}, {1, 4}));
}

TEST(DominanceTest, SingleDimension) {
  EXPECT_TRUE(Dominates({1}, {2}));
  EXPECT_FALSE(Dominates({2}, {1}));
  EXPECT_FALSE(Dominates({1}, {1}));
}

TEST(DominanceTest, InfinityDominatedByFinite) {
  EXPECT_TRUE(Dominates({1, 1}, {1, kInfDist}));
  EXPECT_FALSE(Dominates({1, kInfDist}, {1, 1}));
}

TEST(DominanceTest, DominatesOrEqual) {
  EXPECT_TRUE(DominatesOrEqual({1, 2}, {1, 2}));
  EXPECT_TRUE(DominatesOrEqual({1, 2}, {2, 3}));
  EXPECT_FALSE(DominatesOrEqual({1, 4}, {2, 3}));
}

TEST(DominanceTest, AllFinite) {
  EXPECT_TRUE(AllFinite({1, 2, 3}));
  EXPECT_FALSE(AllFinite({1, kInfDist}));
  EXPECT_TRUE(AllFinite({}));
}

TEST(DominanceSummaryTest, SummarizeComputesComponentRange) {
  const DistSummary s = Summarize({3, 1, 2});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(DominanceSummaryTest, EarlyExitCasesRefuteWithoutComponentScan) {
  // Candidate min above incumbent max: the issue's canonical fast refute.
  const DistVector a = {5, 6};
  const DistVector b = {1, 2};
  EXPECT_FALSE(DominatesWithSummary(a, Summarize(a), b, Summarize(b)));
  // min(a) > min(b) alone refutes even when the ranges overlap.
  const DistVector c = {2, 9};
  const DistVector d = {1, 10};
  EXPECT_FALSE(DominatesWithSummary(c, Summarize(c), d, Summarize(d)));
  // max(a) > max(b) alone refutes too.
  const DistVector e = {1, 11};
  EXPECT_FALSE(DominatesWithSummary(e, Summarize(e), d, Summarize(d)));
}

TEST(DominanceSummaryTest, AgreesWithDominatesOnRandomVectors) {
  Rng rng(42);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t dims = 1 + rng.NextBounded(5);
    DistVector a(dims), b(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      // A tiny value domain makes ties, dominance, and summary-overlap
      // cases all frequent.
      a[i] = static_cast<Dist>(rng.NextBounded(4));
      b[i] = static_cast<Dist>(rng.NextBounded(4));
    }
    EXPECT_EQ(DominatesWithSummary(a, Summarize(a), b, Summarize(b)),
              Dominates(a, b))
        << "trial " << trial;
  }
}

TEST(DominanceSummaryTest, FastPathStillCountsAsOneDominanceTest) {
  // Whether the summary refutes in O(1) or the component loop runs, the
  // dominance-test accounting must advance identically, or QueryStats and
  // profiles would depend on which path resolved the comparison.
  const DistVector lo = {1, 2};
  const DistVector hi = {5, 6};
  const obs::ThreadCounters& tc = obs::ThreadLocalCounters();

  std::uint64_t before = tc.dominance_tests;
  EXPECT_FALSE(
      DominatesWithSummary(hi, Summarize(hi), lo, Summarize(lo)));  // fast
  EXPECT_EQ(tc.dominance_tests, before + 1);

  before = tc.dominance_tests;
  EXPECT_TRUE(
      DominatesWithSummary(lo, Summarize(lo), hi, Summarize(hi)));  // loop
  EXPECT_EQ(tc.dominance_tests, before + 1);
}

TEST(SkylineIndicesTest, BasicSkyline) {
  const std::vector<DistVector> vectors = {
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {5, 5}};
  // {2,6} dominated by {1,5} and {2,4}; {5,5} dominated by {3,3}.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SkylineIndicesTest, AllIncomparable) {
  const std::vector<DistVector> vectors = {{1, 3}, {2, 2}, {3, 1}};
  EXPECT_EQ(SkylineIndices(vectors).size(), 3u);
}

TEST(SkylineIndicesTest, SinglePoint) {
  EXPECT_EQ(SkylineIndices({{7, 7}}), (std::vector<std::size_t>{0}));
}

TEST(SkylineIndicesTest, Empty) {
  EXPECT_TRUE(SkylineIndices({}).empty());
}

TEST(SkylineIndicesTest, DuplicatesAllKept) {
  const std::vector<DistVector> vectors = {{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1}));
}

TEST(SkylineIndicesTest, NonFiniteExcluded) {
  const std::vector<DistVector> vectors = {{kInfDist, 1}, {5, 5}};
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{1}));
}

TEST(SkylineIndicesTest, ChainOfDominance) {
  const std::vector<DistVector> vectors = {{3, 3}, {2, 2}, {1, 1}};
  // Later entries dominate earlier ones; only the last survives.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{2}));
}

TEST(SkylineIndicesTest, HigherDimensions) {
  const std::vector<DistVector> vectors = {
      {1, 2, 3, 4}, {2, 1, 4, 3}, {1, 2, 3, 5}, {0, 9, 9, 9}};
  // {1,2,3,5} dominated by {1,2,3,4}; others incomparable.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1, 3}));
}

}  // namespace
}  // namespace msq
