#include "core/dominance.h"

#include <gtest/gtest.h>

namespace msq {
namespace {

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(Dominates({1, 2}, {2, 3}));
  EXPECT_TRUE(Dominates({1, 3}, {2, 3}));  // tie in one dim, strict other
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}));  // equal: not dominance
  EXPECT_FALSE(Dominates({1, 4}, {2, 3}));  // incomparable
  EXPECT_FALSE(Dominates({2, 3}, {1, 4}));
}

TEST(DominanceTest, SingleDimension) {
  EXPECT_TRUE(Dominates({1}, {2}));
  EXPECT_FALSE(Dominates({2}, {1}));
  EXPECT_FALSE(Dominates({1}, {1}));
}

TEST(DominanceTest, InfinityDominatedByFinite) {
  EXPECT_TRUE(Dominates({1, 1}, {1, kInfDist}));
  EXPECT_FALSE(Dominates({1, kInfDist}, {1, 1}));
}

TEST(DominanceTest, DominatesOrEqual) {
  EXPECT_TRUE(DominatesOrEqual({1, 2}, {1, 2}));
  EXPECT_TRUE(DominatesOrEqual({1, 2}, {2, 3}));
  EXPECT_FALSE(DominatesOrEqual({1, 4}, {2, 3}));
}

TEST(DominanceTest, AllFinite) {
  EXPECT_TRUE(AllFinite({1, 2, 3}));
  EXPECT_FALSE(AllFinite({1, kInfDist}));
  EXPECT_TRUE(AllFinite({}));
}

TEST(SkylineIndicesTest, BasicSkyline) {
  const std::vector<DistVector> vectors = {
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {5, 5}};
  // {2,6} dominated by {1,5} and {2,4}; {5,5} dominated by {3,3}.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SkylineIndicesTest, AllIncomparable) {
  const std::vector<DistVector> vectors = {{1, 3}, {2, 2}, {3, 1}};
  EXPECT_EQ(SkylineIndices(vectors).size(), 3u);
}

TEST(SkylineIndicesTest, SinglePoint) {
  EXPECT_EQ(SkylineIndices({{7, 7}}), (std::vector<std::size_t>{0}));
}

TEST(SkylineIndicesTest, Empty) {
  EXPECT_TRUE(SkylineIndices({}).empty());
}

TEST(SkylineIndicesTest, DuplicatesAllKept) {
  const std::vector<DistVector> vectors = {{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1}));
}

TEST(SkylineIndicesTest, NonFiniteExcluded) {
  const std::vector<DistVector> vectors = {{kInfDist, 1}, {5, 5}};
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{1}));
}

TEST(SkylineIndicesTest, ChainOfDominance) {
  const std::vector<DistVector> vectors = {{3, 3}, {2, 2}, {1, 1}};
  // Later entries dominate earlier ones; only the last survives.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{2}));
}

TEST(SkylineIndicesTest, HigherDimensions) {
  const std::vector<DistVector> vectors = {
      {1, 2, 3, 4}, {2, 1, 4, 3}, {1, 2, 3, 5}, {0, 9, 9, 9}};
  // {1,2,3,5} dominated by {1,2,3,4}; others incomparable.
  EXPECT_EQ(SkylineIndices(vectors), (std::vector<std::size_t>{0, 1, 3}));
}

}  // namespace
}  // namespace msq
