#include "core/edc.h"

#include <gtest/gtest.h>

#include "core/naive.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(EdcTest, BatchMatchesNaiveOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.4, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunEdc(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(EdcTest, IncrementalMatchesBatch) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto workload = testing::MakeRandomWorkload(220, 300, 0.5, seed + 10);
    const auto spec = workload->SampleQuery(3, seed);
    const auto batch = RunEdc(workload->dataset(), spec,
                              EdcOptions{.incremental = false});
    const auto inc = RunEdc(workload->dataset(), spec,
                            EdcOptions{.incremental = true});
    EXPECT_EQ(testing::SkylineIds(inc), testing::SkylineIds(batch))
        << "seed " << seed;
  }
}

TEST(EdcTest, SingleQueryPoint) {
  RoadNetwork network = testing::MakeLineNetwork(6);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(
      std::move(network), {{0, len * 0.5}, {3, len * 0.5}, {4, len * 0.5}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunEdc(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
}

TEST(EdcTest, CandidateCountAtLeastSkylineSize) {
  auto workload = testing::MakeRandomWorkload(300, 400, 0.5, 13);
  const auto spec = workload->SampleQuery(4, 4);
  const auto result = RunEdc(workload->dataset(), spec);
  EXPECT_GE(result.stats.candidate_count, result.skyline.size());
}

TEST(EdcTest, IncrementalReportsProgressively) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.6, 29);
  const auto spec = workload->SampleQuery(3, 5);
  std::size_t reported = 0;
  const auto result =
      RunEdc(workload->dataset(), spec, EdcOptions{.incremental = true},
             [&](const SkylineEntry&) { ++reported; });
  EXPECT_EQ(reported, result.skyline.size());
}

TEST(EdcTest, StaticAttributesSupported) {
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(150, 200, 0.5, seed,
                                                /*attr_dims=*/1);
    const auto spec = workload->SampleQuery(2, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunEdc(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(EdcTest, DenseNetworkSmallCandidateSet) {
  // On a dense grid, Euclidean and network distances are close (δ small),
  // so EDC's candidate set should stay well below |D|.
  auto workload = testing::MakeRandomWorkload(600, 1100, 1.0, 3);
  const auto spec = workload->SampleQuery(3, 1);
  const auto result = RunEdc(workload->dataset(), spec);
  EXPECT_LT(result.stats.candidate_count, workload->objects().size());
}

// Demonstrates the published algorithm's intrinsic incompleteness (see
// EdcOptions::paper_faithful): a network skyline point that is (a) not a
// Euclidean skyline point and (b) outside every shifted hypercube window is
// never fetched. Construction: object e Euclid-dominates o, but a winding
// road makes e network-far from q2 while o has a fast road — o becomes an
// incomparable network skyline point with dE(o,q1) > dN(e,q1), placing it
// outside e's window.
TEST(EdcTest, KnownLimitationPaperFaithfulMissesIncomparablePoint) {
  RoadNetwork network;
  const NodeId q1_node = network.AddNode({0.0, 0.0});
  const NodeId pe = network.AddNode({0.1, 0.0});
  const NodeId po = network.AddNode({0.0333, 0.1972});
  const NodeId q2_node = network.AddNode({0.6, 0.0});
  const EdgeId q1_pe = network.AddEdge(q1_node, pe, 0.15);    // winding
  const EdgeId pe_q2 = network.AddEdge(pe, q2_node, 9.85);    // very slow
  const EdgeId q1_po = network.AddEdge(q1_node, po, 0.2);
  network.AddEdge(po, q2_node, 0.6);
  network.Finalize();

  // e at node pe (end of the winding road), o at node po.
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{q1_pe, 0.15}, {q1_po, 0.2}});
  SkylineQuerySpec spec;
  spec.sources = {{q1_pe, 0.0}, {pe_q2, 9.85}};  // at q1_node and q2_node

  // Ground truth: both objects are network skyline points.
  const auto naive = RunNaive(workload->dataset(), spec);
  ASSERT_EQ(testing::SkylineIds(naive), (std::vector<ObjectId>{0, 1}));

  // The published algorithm misses o (object 1).
  const auto faithful = RunEdc(workload->dataset(), spec,
                               EdcOptions{.paper_faithful = true});
  EXPECT_EQ(testing::SkylineIds(faithful), (std::vector<ObjectId>{0}));

  // The default completion pass restores exactness, in both variants.
  const auto completed = RunEdc(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(completed), (std::vector<ObjectId>{0, 1}));
  const auto completed_inc = RunEdc(workload->dataset(), spec,
                                    EdcOptions{.incremental = true});
  EXPECT_EQ(testing::SkylineIds(completed_inc),
            (std::vector<ObjectId>{0, 1}));
}

TEST(EdcTest, PaperFaithfulOftenExactOnLowDetourNetworks) {
  // The published EDC misses incomparable points on many instances (a
  // seed scan of this configuration shows ~half the seeds losing 1-5
  // skyline points); on these fixed seeds it happens to be exact, which
  // pins the faithful mode's behaviour and its agreement with the oracle
  // when the candidate window suffices.
  for (const std::uint64_t seed : {2, 3, 4}) {
    auto workload = testing::MakeRandomWorkload(400, 1000, 0.5, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto faithful = RunEdc(workload->dataset(), spec,
                                 EdcOptions{.paper_faithful = true});
    EXPECT_EQ(testing::SkylineIds(faithful), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(EdcTest, UsesAStarNotFullSweep) {
  // EDC's settled-node count must stay below |Q| full network sweeps.
  auto workload = testing::MakeRandomWorkload(800, 1150, 0.3, 37);
  const auto spec = workload->SampleQuery(3, 6);
  const auto result = RunEdc(workload->dataset(), spec);
  EXPECT_LT(result.stats.settled_nodes,
            3 * workload->network().node_count());
}

}  // namespace
}  // namespace msq
