// Query-level guardrails: page-access budgets and wall-clock deadlines cut
// queries short with a truncated-but-correct partial result (progressive
// algorithms) or an empty flagged result (batch algorithms), and invalid
// query input comes back as a typed error instead of an abort.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

bool IsSubsetOf(const std::vector<ObjectId>& sub,
                const std::vector<ObjectId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

class GuardrailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = testing::MakeRandomWorkload(300, 400, 1.0, 21);
    spec_ = workload_->SampleQuery(3, 4);
    const auto oracle =
        RunSkylineQuery(Algorithm::kNaive, workload_->dataset(), spec_);
    ASSERT_TRUE(oracle.status.ok());
    true_skyline_ = testing::SkylineIds(oracle);
  }

  std::unique_ptr<Workload> workload_;
  SkylineQuerySpec spec_;
  std::vector<ObjectId> true_skyline_;
};

TEST_F(GuardrailTest, ProgressivePrefixUnderPageBudgetIsTrueSkyline) {
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kLbc, Algorithm::kEdcIncremental}) {
    for (const std::uint64_t budget : {1ull, 20ull, 200ull}) {
      SkylineQuerySpec limited = spec_;
      limited.limits.max_page_accesses = budget;
      std::vector<ObjectId> emitted;
      const auto result = RunSkylineQuery(
          algorithm, workload_->dataset(), limited,
          [&](const SkylineEntry& entry) { emitted.push_back(entry.object); });
      ASSERT_TRUE(result.status.ok()) << AlgorithmName(algorithm);
      if (result.truncated) {
        EXPECT_EQ(result.truncation_reason, StatusCode::kResourceExhausted);
      } else {
        // Budget was enough: the answer must be the full skyline.
        EXPECT_EQ(testing::SkylineIds(result), true_skyline_)
            << AlgorithmName(algorithm) << " budget " << budget;
      }
      // Guardrail contract: everything reported — result entries and
      // progressive callbacks alike — is a true skyline object.
      EXPECT_TRUE(IsSubsetOf(testing::SkylineIds(result), true_skyline_))
          << AlgorithmName(algorithm) << " budget " << budget;
      std::sort(emitted.begin(), emitted.end());
      EXPECT_TRUE(IsSubsetOf(emitted, true_skyline_))
          << AlgorithmName(algorithm) << " budget " << budget;
    }
  }
}

TEST_F(GuardrailTest, TinyBudgetActuallyTruncates) {
  SkylineQuerySpec limited = spec_;
  limited.limits.max_page_accesses = 1;
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kLbc, Algorithm::kEdcIncremental}) {
    const auto result =
        RunSkylineQuery(algorithm, workload_->dataset(), limited);
    ASSERT_TRUE(result.status.ok());
    EXPECT_TRUE(result.truncated) << AlgorithmName(algorithm);
  }
}

TEST_F(GuardrailTest, BatchAlgorithmsReturnEmptyWhenTruncated) {
  SkylineQuerySpec limited = spec_;
  limited.limits.max_page_accesses = 1;
  for (const Algorithm algorithm : {Algorithm::kNaive, Algorithm::kEdc}) {
    const auto result =
        RunSkylineQuery(algorithm, workload_->dataset(), limited);
    ASSERT_TRUE(result.status.ok());
    ASSERT_TRUE(result.truncated) << AlgorithmName(algorithm);
    EXPECT_EQ(result.truncation_reason, StatusCode::kResourceExhausted);
    // Batch algorithms cannot confirm points mid-run, so a truncated batch
    // result reports nothing rather than an unvetted candidate set.
    EXPECT_TRUE(result.skyline.empty()) << AlgorithmName(algorithm);
  }
}

TEST_F(GuardrailTest, DeadlineTruncatesWithItsOwnReason) {
  SkylineQuerySpec limited = spec_;
  limited.limits.max_seconds = 1e-12;
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
    const auto result =
        RunSkylineQuery(algorithm, workload_->dataset(), limited);
    ASSERT_TRUE(result.status.ok());
    ASSERT_TRUE(result.truncated) << AlgorithmName(algorithm);
    EXPECT_EQ(result.truncation_reason, StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(IsSubsetOf(testing::SkylineIds(result), true_skyline_));
  }
}

TEST_F(GuardrailTest, UnlimitedByDefaultMatchesOracle) {
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
    const auto result = RunSkylineQuery(algorithm, workload_->dataset(), spec_);
    ASSERT_TRUE(result.status.ok());
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.truncation_reason, StatusCode::kOk);
    EXPECT_EQ(testing::SkylineIds(result), true_skyline_)
        << AlgorithmName(algorithm);
  }
}

TEST_F(GuardrailTest, NegativeDeadlineIsInvalidArgument) {
  SkylineQuerySpec bad = spec_;
  bad.limits.max_seconds = -1.0;
  const auto result = RunSkylineQuery(Algorithm::kCe, workload_->dataset(), bad);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(result.skyline.empty());
}

TEST_F(GuardrailTest, OutOfRangeLbcSourceIsInvalidArgument) {
  SkylineQuerySpec bad = spec_;
  bad.lbc_source_index = bad.sources.size();
  const auto result =
      RunSkylineQuery(Algorithm::kLbc, workload_->dataset(), bad);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msq
