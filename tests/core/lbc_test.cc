#include "core/lbc.h"

#include <gtest/gtest.h>

#include "core/ce.h"
#include "core/naive.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(LbcTest, MatchesNaiveOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.4, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunLbc(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(LbcTest, NoPlbVariantAlsoExact) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(220, 310, 0.5, seed + 40);
    const auto spec = workload->SampleQuery(3, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got =
        RunLbc(workload->dataset(), spec, LbcOptions{.use_plb = false});
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(LbcTest, PlbSavesNetworkAccess) {
  // The plb early termination must not settle more nodes than the
  // full-distance variant.
  auto workload = testing::MakeRandomWorkload(700, 980, 0.5, 3);
  const auto spec = workload->SampleQuery(4, 2);
  const auto with_plb = RunLbc(workload->dataset(), spec);
  const auto without =
      RunLbc(workload->dataset(), spec, LbcOptions{.use_plb = false});
  EXPECT_EQ(testing::SkylineIds(with_plb), testing::SkylineIds(without));
  EXPECT_LE(with_plb.stats.settled_nodes, without.stats.settled_nodes);
}

TEST(LbcTest, VectorsMatchNaive) {
  auto workload = testing::MakeRandomWorkload(200, 270, 0.5, 91);
  const auto spec = workload->SampleQuery(3, 8);
  const auto expected = RunNaive(workload->dataset(), spec);
  const auto got = RunLbc(workload->dataset(), spec);
  ASSERT_EQ(got.skyline.size(), expected.skyline.size());
  for (const auto& entry : got.skyline) {
    bool found = false;
    for (const auto& want : expected.skyline) {
      if (want.object != entry.object) continue;
      found = true;
      for (std::size_t d = 0; d < entry.vector.size(); ++d) {
        EXPECT_NEAR(entry.vector[d], want.vector[d], 1e-9);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(LbcTest, FirstReportIsSourceNetworkNn) {
  // Section 6.3: "LBC returns the first skyline point immediately since
  // the initial response only involves the source query point and its
  // first network NN is a skyline point."
  auto workload = testing::MakeRandomWorkload(300, 400, 0.5, 55);
  const auto spec = workload->SampleQuery(3, 9);

  std::vector<ObjectId> reported;
  RunLbc(workload->dataset(), spec, LbcOptions{},
         [&](const SkylineEntry& entry) { reported.push_back(entry.object); });
  ASSERT_FALSE(reported.empty());

  // The first reported object must be the network NN of the source.
  const auto vectors = ComputeAllNetworkVectors(workload->dataset(), spec);
  ObjectId nn = kInvalidObject;
  Dist best = kInfDist;
  for (ObjectId id = 0; id < vectors.size(); ++id) {
    if (vectors[id][0] < best) {
      best = vectors[id][0];
      nn = id;
    }
  }
  EXPECT_EQ(reported.front(), nn);
}

TEST(LbcTest, SourceIndexSelectable) {
  auto workload = testing::MakeRandomWorkload(250, 340, 0.5, 77);
  auto spec = workload->SampleQuery(3, 10);
  const auto expected = RunNaive(workload->dataset(), spec);
  for (std::size_t src = 0; src < spec.sources.size(); ++src) {
    spec.lbc_source_index = src;
    const auto got = RunLbc(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "source " << src;
  }
}

TEST(LbcTest, SingleQueryPointReturnsOnlyNn) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 15);
  const auto spec = workload->SampleQuery(1, 1);
  const auto result = RunLbc(workload->dataset(), spec);
  const auto expected = RunNaive(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), testing::SkylineIds(expected));
}

TEST(LbcTest, StaticAttributesSupported) {
  for (std::uint64_t seed = 2; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(150, 200, 0.5, seed,
                                                /*attr_dims=*/2);
    const auto spec = workload->SampleQuery(2, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunLbc(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(LbcTest, CandidateSetSmallerThanCe) {
  // The paper's Figure 4: LBC has a remarkably low candidate ratio; its
  // candidate space is bounded by network skyline points while CE collects
  // everything closer than the first common object.
  std::size_t lbc_smaller = 0, runs = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(500, 700, 0.5, seed);
    const auto spec = workload->SampleQuery(4, seed);
    const auto lbc = RunLbc(workload->dataset(), spec);
    const auto ce = RunCe(workload->dataset(), spec);
    ++runs;
    if (lbc.stats.candidate_count <= ce.stats.candidate_count) {
      ++lbc_smaller;
    }
  }
  // Not guaranteed instance-by-instance (no definitive C relation in §5)
  // but must hold in the typical case.
  EXPECT_GE(lbc_smaller * 2, runs);
}

TEST(LbcTest, DisconnectedIslandObjectExcluded) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.4, 0});
  network.AddNode({0.6, 0.5});
  network.AddNode({1.0, 0.5});
  const EdgeId mainland = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  auto workload = testing::MakeWorkload(
      std::move(network), {{mainland, 0.2}, {island, 0.2}});
  SkylineQuerySpec spec;
  spec.sources = {{mainland, 0.0}};
  const auto result = RunLbc(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
}

TEST(LbcTest, AlternatingSourcesExact) {
  // The §4.3 extension: rotating the discovery source must not change the
  // answer, only the reporting order.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.5, seed + 60);
    const auto spec = workload->SampleQuery(4, seed);
    const auto expected = RunNaive(workload->dataset(), spec);
    const auto got = RunLbc(workload->dataset(), spec,
                            LbcOptions{.alternate_sources = true});
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(LbcTest, AlternatingSourcesSpreadsEarlyReports) {
  // With alternation the first |Q| reported points are the network NNs of
  // distinct query points (when those NNs are distinct objects).
  auto workload = testing::MakeRandomWorkload(400, 560, 0.5, 71);
  const auto spec = workload->SampleQuery(3, 7);

  std::vector<ObjectId> reported;
  RunLbc(workload->dataset(), spec, LbcOptions{.alternate_sources = true},
         [&](const SkylineEntry& e) { reported.push_back(e.object); });
  ASSERT_GE(reported.size(), 1u);

  // The very first report is the network NN of query point 0.
  const auto vectors = ComputeAllNetworkVectors(workload->dataset(), spec);
  ObjectId nn0 = kInvalidObject;
  Dist best = kInfDist;
  for (ObjectId id = 0; id < vectors.size(); ++id) {
    if (vectors[id][0] < best) {
      best = vectors[id][0];
      nn0 = id;
    }
  }
  EXPECT_EQ(reported.front(), nn0);
}

TEST(LbcTest, AlternatingWithAttributes) {
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 81,
                                              /*attr_dims=*/1);
  const auto spec = workload->SampleQuery(3, 2);
  const auto expected = RunNaive(workload->dataset(), spec);
  const auto got = RunLbc(workload->dataset(), spec,
                          LbcOptions{.alternate_sources = true});
  EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected));
}

TEST(LbcTest, AlternatingSingleQueryPointDegenerates) {
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 83);
  const auto spec = workload->SampleQuery(1, 1);
  const auto plain = RunLbc(workload->dataset(), spec);
  const auto alt = RunLbc(workload->dataset(), spec,
                          LbcOptions{.alternate_sources = true});
  EXPECT_EQ(testing::SkylineIds(alt), testing::SkylineIds(plain));
}

TEST(LbcTest, EmptyObjectSet) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  auto workload = testing::MakeWorkload(std::move(network), {});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunLbc(workload->dataset(), spec);
  EXPECT_TRUE(result.skyline.empty());
  EXPECT_EQ(result.stats.candidate_count, 0u);
}

}  // namespace
}  // namespace msq
