#include "core/naive.h"

#include <gtest/gtest.h>

#include "testing_support.h"

namespace msq {
namespace {

TEST(NaiveTest, SingleQuerySingleObject) {
  RoadNetwork network = testing::MakeLineNetwork(3);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(std::move(network), {{1, len / 2}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunNaive(workload->dataset(), spec);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline[0].object, 0u);
  EXPECT_NEAR(result.skyline[0].vector[0], len * 1.5, 1e-12);
}

TEST(NaiveTest, SingleQueryOnlyNearestSurvives) {
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(
      std::move(network), {{0, len * 0.5}, {2, len * 0.5}, {3, len * 0.5}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunNaive(workload->dataset(), spec);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline[0].object, 0u);
}

TEST(NaiveTest, TwoQueriesLineNetworkHandComputed) {
  // Line of 5 nodes (edges of length 0.25). Queries at the two ends.
  // Objects at offsets 0.1, 0.5, 0.9 along the line: all three are skyline
  // (distance vectors (0.1,0.9), (0.5,0.5), (0.9,0.1)).
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;  // 0.25
  auto workload = testing::MakeWorkload(
      std::move(network),
      {{0, len * 0.4}, {2, 0.0}, {3, len * 0.6}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}, {3, len}};
  const auto result = RunNaive(workload->dataset(), spec);
  EXPECT_EQ(result.skyline.size(), 3u);
}

TEST(NaiveTest, DominatedMiddleObjectRemoved) {
  // Objects at the same spot: one strictly farther from both queries.
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(
      std::move(network), {{1, len * 0.5}, {1, len * 0.5}, {2, len * 0.5}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  const auto result = RunNaive(workload->dataset(), spec);
  // Both co-located nearest objects are skyline (equal vectors); the
  // farther one is dominated.
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0, 1}));
}

TEST(NaiveTest, UnreachableObjectExcluded) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.5, 0});
  network.AddNode({0, 1});
  network.AddNode({0.5, 1});
  const EdgeId main_edge = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{main_edge, 0.1}, {island, 0.1}});
  SkylineQuerySpec spec;
  spec.sources = {{main_edge, 0.0}};
  const auto result = RunNaive(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
}

TEST(NaiveTest, StaticAttributesChangeSkyline) {
  // Two objects: 1 is farther but cheaper; both skyline with attributes,
  // only 0 without.
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(0).length;
  std::vector<Location> objects = {{0, len * 0.5}, {2, len * 0.5}};
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}};
  {
    auto workload = testing::MakeWorkload(testing::MakeLineNetwork(4),
                                          objects);
    const auto result = RunNaive(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0}));
  }
  {
    auto workload = testing::MakeWorkload(std::move(network), objects,
                                          {{10.0}, {2.0}});
    const auto result = RunNaive(workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(result), (std::vector<ObjectId>{0, 1}));
    // Vectors carry n + attr dims.
    EXPECT_EQ(result.skyline[0].vector.size(), 2u);
  }
}

TEST(NaiveTest, StatsPopulated) {
  RoadNetwork network = testing::MakeGridNetwork(4);
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{0, 0.1}, {5, 0.1}, {10, 0.1}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}, {20, 0.0}};
  const auto result = RunNaive(workload->dataset(), spec);
  EXPECT_EQ(result.stats.candidate_count, 3u);
  EXPECT_EQ(result.stats.skyline_size, result.skyline.size());
  EXPECT_GT(result.stats.network_pages, 0u);
  EXPECT_GE(result.stats.total_seconds, 0.0);
  EXPECT_LE(result.stats.initial_seconds,
            result.stats.total_seconds + 1e-9);
}

TEST(NaiveTest, ProgressiveCallbackFires) {
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{0, len * 0.5}, {2, len * 0.5}});
  SkylineQuerySpec spec;
  spec.sources = {{0, 0.0}, {2, len}};
  std::size_t reported = 0;
  const auto result = RunNaive(workload->dataset(), spec,
                               [&](const SkylineEntry&) { ++reported; });
  EXPECT_EQ(reported, result.skyline.size());
}

}  // namespace
}  // namespace msq
