#include "core/network_queries.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "testing_support.h"

namespace msq {
namespace {

// All (object, distance) pairs by brute force, ascending.
std::vector<NetworkMatch> BruteForceAll(Workload& workload,
                                        const Location& source) {
  SkylineQuerySpec spec;
  spec.sources = {source};
  const auto vectors =
      ComputeAllNetworkVectors(workload.dataset(), spec);
  std::vector<NetworkMatch> all;
  for (ObjectId id = 0; id < vectors.size(); ++id) {
    if (std::isfinite(vectors[id][0])) {
      all.push_back(NetworkMatch{id, vectors[id][0]});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const NetworkMatch& a, const NetworkMatch& b) {
              return a.distance < b.distance;
            });
  return all;
}

TEST(NetworkKnnTest, MatchesBruteForce) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 3);
  const Location source{0, 0.0};
  const auto expected = BruteForceAll(*workload, source);
  const auto got = NetworkKnn(workload->dataset(), source, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9) << i;
  }
}

TEST(NetworkKnnTest, KLargerThanObjectCount) {
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{0, len / 2}, {2, len / 2}});
  const auto got = NetworkKnn(workload->dataset(), Location{0, 0.0}, 99);
  EXPECT_EQ(got.size(), 2u);
}

TEST(NetworkKnnTest, ZeroK) {
  auto workload = testing::MakeRandomWorkload(100, 140, 0.5, 5);
  EXPECT_TRUE(NetworkKnn(workload->dataset(), Location{0, 0.0}, 0).empty());
}

TEST(NetworkKnnTest, UnreachableObjectsSkipped) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.4, 0});
  network.AddNode({0.6, 0.5});
  network.AddNode({1.0, 0.5});
  const EdgeId mainland = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  auto workload = testing::MakeWorkload(
      std::move(network), {{mainland, 0.2}, {island, 0.2}});
  const auto got = NetworkKnn(workload->dataset(), Location{mainland, 0.0},
                              5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].object, 0u);
}

TEST(NetworkRangeTest, MatchesBruteForce) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 7);
  const Location source{3, 0.0};
  const auto all = BruteForceAll(*workload, source);
  const Dist radius = all[all.size() / 3].distance;  // a realized distance
  const auto got = NetworkRange(workload->dataset(), source, radius);

  std::size_t expected_count = 0;
  for (const NetworkMatch& m : all) {
    if (m.distance <= radius) ++expected_count;
  }
  EXPECT_EQ(got.size(), expected_count);
  // Boundary inclusive: the object that defined the radius is included.
  bool boundary_found = false;
  for (const NetworkMatch& m : got) {
    EXPECT_LE(m.distance, radius + 1e-12);
    if (std::abs(m.distance - radius) < 1e-12) boundary_found = true;
  }
  EXPECT_TRUE(boundary_found);
}

TEST(NetworkRangeTest, ZeroRadius) {
  RoadNetwork network = testing::MakeLineNetwork(3);
  const Dist len = network.EdgeAt(0).length;
  auto workload = testing::MakeWorkload(std::move(network),
                                        {{0, len / 2}, {1, len / 2}});
  // An object exactly at the query location has distance 0.
  const auto got =
      NetworkRange(workload->dataset(), Location{0, len / 2}, 0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].object, 0u);
}

TEST(NetworkRangeTest, ResultsAscending) {
  auto workload = testing::MakeRandomWorkload(200, 280, 1.0, 9);
  const auto got =
      NetworkRange(workload->dataset(), Location{0, 0.0}, 0.4);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].distance, got[i].distance + 1e-12);
  }
}

}  // namespace
}  // namespace msq
