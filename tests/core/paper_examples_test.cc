// Reproductions of the paper's didactic configurations.
//
// Figure 1 (CE): two query points, five objects; p1 is the first object
// visited by all query points and the first skyline point; p4, beyond both
// circles, is never a candidate.
//
// Figure 2 (EDC): Euclidean skyline points are shifted by their network
// distances and the shifted hypercube fetches candidates that can dominate
// them.
//
// The figures are drawn in free space; we realize them on a dense grid
// network where network distances approximate the drawn geometry, then
// assert the structural claims the paper makes about each algorithm.
#include <gtest/gtest.h>

#include "core/ce.h"
#include "core/edc.h"
#include "core/lbc.h"
#include "core/naive.h"
#include "testing_support.h"

namespace msq {
namespace {

// Builds a 9x9 grid network and snaps the given planar points onto it as
// objects, returning the workload.
struct FigureWorld {
  explicit FigureWorld(const std::vector<Point>& object_points) {
    RoadNetwork network = testing::MakeGridNetwork(9);
    std::vector<Location> objects;
    for (const Point& p : object_points) {
      objects.push_back(SnapToNearestEdge(network, p));
    }
    workload = testing::MakeWorkload(std::move(network), objects);
  }

  static Location SnapToNearestEdge(const RoadNetwork& network,
                                    const Point& p) {
    EdgeId best_edge = 0;
    Dist best = kInfDist;
    for (EdgeId e = 0; e < network.edge_count(); ++e) {
      const Dist d = network.EdgeSegment(e).DistanceTo(p);
      if (d < best) {
        best = d;
        best_edge = e;
      }
    }
    return network.SnapToEdge(best_edge, p);
  }

  Location Snap(const Point& p) const {
    return SnapToNearestEdge(workload->network(), p);
  }

  std::unique_ptr<Workload> workload;
};

// Figure 1's layout (coordinates eyeballed from the figure, scaled into
// the unit square): q1 left, q2 right; p1 between them; p2, p3, p5 nearer
// to one query point; p4 far beyond q1's circle.
class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : world_({{0.50, 0.45},    // p1: central, first common visit
                {0.55, 0.70},    // p2
                {0.60, 0.30},    // p3
                {0.05, 0.95},    // p4: far outside both circles
                {0.30, 0.75}}),  // p5
        spec_() {
    spec_.sources = {world_.Snap({0.25, 0.5}), world_.Snap({0.75, 0.5})};
  }

  FigureWorld world_;
  SkylineQuerySpec spec_;
};

TEST_F(Figure1Test, FirstReportedSkylineIsFirstCommonVisit) {
  std::vector<ObjectId> reported;
  RunCe(world_.workload->dataset(), spec_,
        [&](const SkylineEntry& e) { reported.push_back(e.object); });
  ASSERT_FALSE(reported.empty());
  EXPECT_EQ(reported.front(), 0u);  // p1
}

TEST_F(Figure1Test, FarObjectNeverACandidate) {
  // p4 is dominated by p1 and outside both search circles when the
  // filtering phase ends; CE's candidate set must exclude it, so |C| < |D|.
  const auto result = RunCe(world_.workload->dataset(), spec_);
  EXPECT_LT(result.stats.candidate_count, 5u);
  // And p4 is not in the skyline.
  for (const ObjectId id : testing::SkylineIds(result)) {
    EXPECT_NE(id, 3u);
  }
}

TEST_F(Figure1Test, AllAlgorithmsAgreeWithOracle) {
  const auto expected = RunNaive(world_.workload->dataset(), spec_);
  EXPECT_EQ(testing::SkylineIds(RunCe(world_.workload->dataset(), spec_)),
            testing::SkylineIds(expected));
  EXPECT_EQ(testing::SkylineIds(RunEdc(world_.workload->dataset(), spec_)),
            testing::SkylineIds(expected));
  EXPECT_EQ(testing::SkylineIds(RunLbc(world_.workload->dataset(), spec_)),
            testing::SkylineIds(expected));
}

// Figure 2/3-style configuration: a candidate that is not a Euclidean
// skyline point must still be found as a network skyline point when
// detours make the Euclidean skyline point worse in network distance.
TEST(Figure2Test, NetworkSkylineNotSubsetOfEuclideanSkyline) {
  // A ladder network where the straight rung between the query points is
  // replaced by a long curved road (length clamp exploited via explicit
  // lengths), so the Euclidean-closest object sits on a slow road.
  RoadNetwork network;
  const NodeId a = network.AddNode({0.0, 0.5});
  const NodeId b = network.AddNode({0.5, 0.5});
  const NodeId c = network.AddNode({1.0, 0.5});
  const NodeId d = network.AddNode({0.5, 0.9});
  // Slow direct roads a-b, b-c (length 5x Euclidean), fast detour via d.
  const EdgeId ab = network.AddEdge(a, b, 2.5);
  const EdgeId bc = network.AddEdge(b, c, 2.5);
  network.AddEdge(a, d, 0.65);
  network.AddEdge(d, c, 0.65);
  network.Finalize();

  // Object 0 on the slow road at the exact Euclidean midpoint; object 1 on
  // the fast detour.
  const Dist ad_len = network.EdgeAt(2).length;
  auto workload = testing::MakeWorkload(
      std::move(network), {{ab, 2.5}, {2, ad_len * 0.99}});
  SkylineQuerySpec spec;
  spec.sources = {{ab, 0.0}, {bc, 2.5}};  // at nodes a and c

  // Euclidean skyline: object 0 (midpoint) dominates nothing; both may be
  // Euclidean skyline. But in network distance the detour object is far
  // better to both; object 0's vector is (2.5, 2.5) vs object 1's
  // (~0.64, ~0.66): object 0 is dominated in network space.
  const auto naive = RunNaive(workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(naive), (std::vector<ObjectId>{1}));
  EXPECT_EQ(testing::SkylineIds(RunEdc(workload->dataset(), spec)),
            (std::vector<ObjectId>{1}));
  EXPECT_EQ(testing::SkylineIds(RunLbc(workload->dataset(), spec)),
            (std::vector<ObjectId>{1}));
  EXPECT_EQ(testing::SkylineIds(RunCe(workload->dataset(), spec)),
            (std::vector<ObjectId>{1}));
}

// Section 5 / Figure 3: N(LBC) <= N(CE) — the network nodes accessed by
// LBC are a subset of CE's.
TEST(Figure3Test, LbcNetworkAccessAtMostCe) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(600, 840, 0.5, seed);
    const auto spec = workload->SampleQuery(3, seed);
    const auto lbc = RunLbc(workload->dataset(), spec);
    const auto ce = RunCe(workload->dataset(), spec);
    EXPECT_LE(lbc.stats.settled_nodes, ce.stats.settled_nodes)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace msq
