// Progressive-reporting invariants across the algorithms — the behaviour
// behind the paper's initial-response-time measurements (Figures 5(c),
// 6(c), 6(f)).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "testing_support.h"

namespace msq {
namespace {

struct Report {
  std::vector<SkylineEntry> entries;
};

Report Capture(Algorithm algorithm, Workload& workload,
               const SkylineQuerySpec& spec) {
  Report report;
  RunSkylineQuery(algorithm, workload.dataset(), spec,
                  [&](const SkylineEntry& entry) {
                    report.entries.push_back(entry);
                  });
  return report;
}

class ProgressiveTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ProgressiveTest, CallbackEntriesAreFinalResults) {
  auto workload = testing::MakeRandomWorkload(250, 350, 0.5, 7);
  const auto spec = workload->SampleQuery(3, 4);
  std::vector<SkylineEntry> streamed;
  const auto result = RunSkylineQuery(
      GetParam(), workload->dataset(), spec,
      [&](const SkylineEntry& e) { streamed.push_back(e); });

  // Every final entry was streamed (CE/LBC may stream tie-filtered
  // extras, never fewer).
  for (const SkylineEntry& entry : result.skyline) {
    const bool found = std::any_of(
        streamed.begin(), streamed.end(), [&](const SkylineEntry& s) {
          return s.object == entry.object && s.vector == entry.vector;
        });
    EXPECT_TRUE(found) << "object " << entry.object << " not streamed by "
                       << AlgorithmName(GetParam());
  }
  EXPECT_GE(streamed.size(), result.skyline.size());
}

TEST_P(ProgressiveTest, StreamedVectorsAreExact) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 11);
  const auto spec = workload->SampleQuery(2, 6);
  const auto oracle = RunNaive(workload->dataset(), spec);
  const auto report = Capture(GetParam(), *workload, spec);
  for (const SkylineEntry& entry : report.entries) {
    bool matched = false;
    for (const SkylineEntry& want : oracle.skyline) {
      if (want.object != entry.object) continue;
      matched = true;
      ASSERT_EQ(entry.vector.size(), want.vector.size());
      for (std::size_t d = 0; d < entry.vector.size(); ++d) {
        EXPECT_NEAR(entry.vector[d], want.vector[d], 1e-9);
      }
    }
    EXPECT_TRUE(matched) << AlgorithmName(GetParam()) << " streamed "
                         << entry.object;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ProgressiveTest,
    ::testing::Values(Algorithm::kNaive, Algorithm::kCe, Algorithm::kEdc,
                      Algorithm::kEdcIncremental, Algorithm::kLbc),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name{AlgorithmName(info.param)};
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(ProgressiveOrderTest, LbcReportsInAscendingSourceDistance) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 13);
  auto spec = workload->SampleQuery(3, 8);
  spec.lbc_source_index = 1;
  std::vector<Dist> source_dists;
  RunLbc(workload->dataset(), spec, LbcOptions{},
         [&](const SkylineEntry& e) {
           source_dists.push_back(e.vector[1]);
         });
  for (std::size_t i = 1; i < source_dists.size(); ++i) {
    EXPECT_LE(source_dists[i - 1], source_dists[i] + 1e-9);
  }
}

TEST(ProgressiveOrderTest, LbcFirstReportBeforeAnyOtherSearchWork) {
  // Section 6.3: LBC's first skyline point involves only the source query
  // point. With |Q| = 1 the whole query is the first report.
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 17);
  const auto spec = workload->SampleQuery(1, 2);
  std::size_t count = 0;
  const auto result = RunLbc(workload->dataset(), spec, LbcOptions{},
                             [&](const SkylineEntry&) { ++count; });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(result.skyline.size(), 1u);
}

TEST(ProgressiveOrderTest, BatchEdcStreamsOnlyAtEnd) {
  // Batch EDC cannot report before step 5: its initial response time is
  // close to its total time.
  auto workload = testing::MakeRandomWorkload(400, 560, 0.5, 19);
  const auto spec = workload->SampleQuery(3, 3);
  const auto result = RunSkylineQuery(Algorithm::kEdc, workload->dataset(),
                                      spec);
  EXPECT_GE(result.stats.initial_seconds,
            result.stats.total_seconds * 0.5);
}

TEST(ProgressiveOrderTest, LbcInitialFarBelowTotal) {
  auto workload = testing::MakeRandomWorkload(800, 1120, 0.5, 23);
  const auto spec = workload->SampleQuery(4, 5);
  const auto result = RunSkylineQuery(Algorithm::kLbc, workload->dataset(),
                                      spec);
  ASSERT_GT(result.skyline.size(), 1u);
  EXPECT_LT(result.stats.initial_seconds,
            result.stats.total_seconds * 0.5);
}

}  // namespace
}  // namespace msq
