// Tests for the query variants beyond the paper: k-skyband and
// range-constrained skyline.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/constrained.h"
#include "core/naive.h"
#include "core/skyband.h"
#include "testing_support.h"

namespace msq {
namespace {

std::vector<ObjectId> BandIds(const SkybandResult& result) {
  std::vector<ObjectId> ids;
  for (const auto& entry : result.entries) ids.push_back(entry.object);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ----------------------------------------------------------- SkybandIndices

TEST(SkybandIndicesTest, KOneIsSkyline) {
  const std::vector<DistVector> vectors = {{1, 5}, {2, 4}, {3, 3}, {2, 6}};
  const auto band = SkybandIndices(vectors, 1);
  std::vector<std::size_t> ids;
  for (const auto& [idx, count] : band) {
    ids.push_back(idx);
    EXPECT_EQ(count, 0u);
  }
  EXPECT_EQ(ids, SkylineIndices(vectors));
}

TEST(SkybandIndicesTest, KTwoAdmitsSinglyDominated) {
  const std::vector<DistVector> vectors = {
      {1, 1},   // skyline
      {2, 2},   // dominated by {1,1} only -> in 2-band
      {3, 3},   // dominated by two -> out
  };
  const auto band = SkybandIndices(vectors, 2);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(band[0].first, 0u);
  EXPECT_EQ(band[0].second, 0u);
  EXPECT_EQ(band[1].first, 1u);
  EXPECT_EQ(band[1].second, 1u);
}

TEST(SkybandIndicesTest, LargeKAdmitsEverything) {
  const std::vector<DistVector> vectors = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(SkybandIndices(vectors, 100).size(), 3u);
}

TEST(SkybandIndicesTest, NonFiniteExcluded) {
  const std::vector<DistVector> vectors = {{1, 1}, {kInfDist, 0}};
  EXPECT_EQ(SkybandIndices(vectors, 5).size(), 1u);
}

// ----------------------------------------------------------- network skyband

TEST(SkybandTest, KOneMatchesSkyline) {
  auto workload = testing::MakeRandomWorkload(250, 350, 0.5, 5);
  const auto spec = workload->SampleQuery(3, 2);
  const auto skyline = RunNaive(workload->dataset(), spec);
  const auto band = RunSkybandNaive(workload->dataset(), spec, 1);
  EXPECT_EQ(BandIds(band), testing::SkylineIds(skyline));
}

TEST(SkybandTest, LbcMatchesNaiveAcrossK) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(220, 300, 0.5, seed + 30);
    const auto spec = workload->SampleQuery(3, seed);
    for (const std::size_t k : {1, 2, 4}) {
      const auto naive = RunSkybandNaive(workload->dataset(), spec, k);
      const auto lbc = RunSkybandLbc(workload->dataset(), spec, k);
      EXPECT_EQ(BandIds(lbc), BandIds(naive))
          << "seed " << seed << " k " << k;
      // Dominator counts agree entry-by-entry.
      for (std::size_t i = 0; i < lbc.entries.size(); ++i) {
        EXPECT_EQ(lbc.entries[i].object, naive.entries[i].object);
        EXPECT_EQ(lbc.entries[i].dominator_count,
                  naive.entries[i].dominator_count);
      }
    }
  }
}

TEST(SkybandTest, BandsAreNested) {
  auto workload = testing::MakeRandomWorkload(250, 340, 0.5, 41);
  const auto spec = workload->SampleQuery(3, 3);
  const auto band1 = BandIds(RunSkybandLbc(workload->dataset(), spec, 1));
  const auto band2 = BandIds(RunSkybandLbc(workload->dataset(), spec, 2));
  const auto band3 = BandIds(RunSkybandLbc(workload->dataset(), spec, 3));
  EXPECT_TRUE(std::includes(band2.begin(), band2.end(), band1.begin(),
                            band1.end()));
  EXPECT_TRUE(std::includes(band3.begin(), band3.end(), band2.begin(),
                            band2.end()));
  EXPECT_LE(band1.size(), band2.size());
  EXPECT_LE(band2.size(), band3.size());
}

TEST(SkybandTest, WithStaticAttributes) {
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 43,
                                              /*attr_dims=*/1);
  const auto spec = workload->SampleQuery(2, 2);
  const auto naive = RunSkybandNaive(workload->dataset(), spec, 2);
  const auto lbc = RunSkybandLbc(workload->dataset(), spec, 2);
  EXPECT_EQ(BandIds(lbc), BandIds(naive));
}

TEST(SkybandTest, EntriesSortedByDominatorCount) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.5, 47);
  const auto spec = workload->SampleQuery(3, 5);
  const auto band = RunSkybandLbc(workload->dataset(), spec, 3);
  for (std::size_t i = 1; i < band.entries.size(); ++i) {
    EXPECT_LE(band.entries[i - 1].dominator_count,
              band.entries[i].dominator_count);
  }
}

// ------------------------------------------------------ constrained skyline

TEST(ConstrainedSkylineTest, LbcMatchesNaive) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 0.5, seed + 50);
    const auto spec = workload->SampleQuery(3, seed);
    for (const Dist radius : {0.1, 0.3, 0.8}) {
      const auto naive =
          RunConstrainedSkylineNaive(workload->dataset(), spec, radius);
      const auto lbc =
          RunConstrainedSkylineLbc(workload->dataset(), spec, radius);
      EXPECT_EQ(testing::SkylineIds(lbc), testing::SkylineIds(naive))
          << "seed " << seed << " radius " << radius;
    }
  }
}

TEST(ConstrainedSkylineTest, AllResultsWithinRadius) {
  auto workload = testing::MakeRandomWorkload(250, 350, 0.5, 61);
  const auto spec = workload->SampleQuery(3, 4);
  const Dist radius = 0.4;
  const auto result =
      RunConstrainedSkylineLbc(workload->dataset(), spec, radius);
  for (const SkylineEntry& entry : result.skyline) {
    for (std::size_t i = 0; i < spec.sources.size(); ++i) {
      EXPECT_LE(entry.vector[i], radius + 1e-12);
    }
  }
}

TEST(ConstrainedSkylineTest, TinyRadiusYieldsEmpty) {
  auto workload = testing::MakeRandomWorkload(200, 280, 0.1, 67);
  const auto spec = workload->SampleQuery(3, 2);
  const auto result =
      RunConstrainedSkylineLbc(workload->dataset(), spec, 1e-9);
  EXPECT_TRUE(result.skyline.empty());
}

TEST(ConstrainedSkylineTest, HugeRadiusMatchesUnconstrained) {
  auto workload = testing::MakeRandomWorkload(250, 350, 0.5, 71);
  const auto spec = workload->SampleQuery(3, 3);
  const auto unconstrained = RunNaive(workload->dataset(), spec);
  const auto constrained =
      RunConstrainedSkylineLbc(workload->dataset(), spec, 1e9);
  EXPECT_EQ(testing::SkylineIds(constrained),
            testing::SkylineIds(unconstrained));
}

TEST(ConstrainedSkylineTest, EqualsInRangeSubsetOfSkyline) {
  // A dominator of an in-range object is component-wise closer and so in
  // range itself; hence the constrained skyline is exactly the in-range
  // subset of the unconstrained skyline.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto workload = testing::MakeRandomWorkload(250, 350, 1.0, seed + 80);
    const auto spec = workload->SampleQuery(3, seed);
    const Dist radius = 0.35;
    const auto unconstrained = RunNaive(workload->dataset(), spec);
    std::vector<ObjectId> expected;
    for (const SkylineEntry& entry : unconstrained.skyline) {
      bool in_range = true;
      for (std::size_t i = 0; i < spec.sources.size(); ++i) {
        if (entry.vector[i] > radius) {
          in_range = false;
          break;
        }
      }
      if (in_range) expected.push_back(entry.object);
    }
    std::sort(expected.begin(), expected.end());
    const auto constrained = testing::SkylineIds(
        RunConstrainedSkylineLbc(workload->dataset(), spec, radius));
    EXPECT_EQ(constrained, expected) << "seed " << seed;
  }
}

TEST(ConstrainedSkylineTest, WithAttributesAndLandmarks) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{250, 330, 91, 0.4, 0.0};
  config.object_density = 0.5;
  config.static_attr_dims = 1;
  config.landmark_count = 4;
  Workload workload(config);
  const auto spec = workload.SampleQuery(3, 2);
  const auto naive =
      RunConstrainedSkylineNaive(workload.dataset(), spec, 0.5);
  const auto lbc = RunConstrainedSkylineLbc(workload.dataset(), spec, 0.5);
  EXPECT_EQ(testing::SkylineIds(lbc), testing::SkylineIds(naive));
}

}  // namespace
}  // namespace msq
