#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "euclid/bbs.h"
#include "euclid/bnl.h"
#include "euclid/sfs.h"
#include "index/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  return points;
}

TEST(EuclideanVectorTest, DistancesInQueryOrder) {
  const std::vector<Point> queries = {{0, 0}, {1, 0}};
  const DistVector vec = EuclideanVector({0.5, 0}, queries);
  ASSERT_EQ(vec.size(), 2u);
  EXPECT_DOUBLE_EQ(vec[0], 0.5);
  EXPECT_DOUBLE_EQ(vec[1], 0.5);
}

TEST(BnlTest, SingleQueryNearestIsOnlySkyline) {
  // With one query point, the skyline is exactly the nearest point(s).
  const std::vector<Point> points = {{0.1, 0}, {0.2, 0}, {0.9, 0}};
  const std::vector<Point> queries = {{0, 0}};
  const auto skyline = BnlEuclideanSkyline(points, queries);
  EXPECT_EQ(skyline, (std::vector<std::size_t>{0}));
}

TEST(BnlTest, TwoQueryPointsHandComputed) {
  // q1 at origin, q2 at (1,0). p0 near q1, p1 near q2, p2 far from both,
  // p3 in the middle.
  const std::vector<Point> points = {
      {0.05, 0}, {0.95, 0}, {0.5, 0.9}, {0.5, 0.0}};
  const std::vector<Point> queries = {{0, 0}, {1, 0}};
  const auto skyline = BnlEuclideanSkyline(points, queries);
  EXPECT_EQ(skyline, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(BnlTest, DuplicateVectorsBothSkyline) {
  const std::vector<Point> points = {{0.3, 0.3}, {0.3, 0.3}};
  const std::vector<Point> queries = {{0, 0}, {1, 1}};
  const auto skyline = BnlEuclideanSkyline(points, queries);
  EXPECT_EQ(skyline.size(), 2u);
}

TEST(BnlTest, EmptyInput) {
  EXPECT_TRUE(BnlEuclideanSkyline({}, {{0, 0}}).empty());
}

TEST(SfsTest, MatchesBnlOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto points = RandomPoints(200, seed);
    const auto queries = RandomPoints(3, seed + 100);
    EXPECT_EQ(SfsEuclideanSkyline(points, queries),
              BnlEuclideanSkyline(points, queries))
        << "seed " << seed;
  }
}

TEST(SfsTest, ExcludesNonFiniteVectors) {
  std::vector<DistVector> vectors = {
      {1.0, 2.0}, {kInfDist, 0.5}, {2.0, 1.0}};
  const auto skyline = SfsSkyline(vectors);
  EXPECT_EQ(skyline, (std::vector<std::size_t>{0, 2}));
}

TEST(SfsTest, GenericVectorsWithAttributes) {
  // 2 distance dims + 1 attribute dim.
  std::vector<DistVector> vectors = {
      {1.0, 1.0, 0.5},   // skyline
      {1.0, 1.0, 0.7},   // dominated by 0 (same dists, worse attr)
      {2.0, 0.5, 0.9}};  // skyline (best second dim? 0.5 < 1.0)
  const auto skyline = SfsSkyline(vectors);
  EXPECT_EQ(skyline, (std::vector<std::size_t>{0, 2}));
}

class BbsTest : public ::testing::Test {
 protected:
  BbsTest() : buffer_(&disk_, 512) {}

  RTree BuildTree(const std::vector<Point>& points) {
    RTree tree(&buffer_);
    std::vector<RTreeEntry> items;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
      items.push_back(RTreeEntry{Mbr::FromPoint(points[i]), i});
    }
    tree.BulkLoad(std::move(items));
    return tree;
  }

  InMemoryDiskManager disk_;
  BufferManager buffer_;
};

TEST_F(BbsTest, MatchesBnlOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto points = RandomPoints(300, seed);
    const auto queries = RandomPoints(4, seed + 50);
    RTree tree = BuildTree(points);
    EuclideanSkylineBrowser browser(&tree, queries);

    std::vector<std::size_t> got;
    for (auto item = browser.Next(); item.found; item = browser.Next()) {
      got.push_back(item.object);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BnlEuclideanSkyline(points, queries)) << "seed " << seed;
  }
}

TEST_F(BbsTest, ProgressiveAscendingMindistSum) {
  const auto points = RandomPoints(400, 9);
  const auto queries = RandomPoints(2, 99);
  RTree tree = BuildTree(points);
  EuclideanSkylineBrowser browser(&tree, queries);
  double last = 0.0;
  for (auto item = browser.Next(); item.found; item = browser.Next()) {
    double sum = 0.0;
    for (const Dist d : item.vector) sum += d;
    EXPECT_GE(sum + 1e-12, last);
    last = sum;
  }
}

TEST_F(BbsTest, ExternalPruneSkipsRegion) {
  const std::vector<Point> points = {{0.1, 0.1}, {0.9, 0.9}};
  const std::vector<Point> queries = {{0, 0}};
  RTree tree = BuildTree(points);
  // Prune everything in the lower-left quadrant.
  EuclideanSkylineBrowser browser(
      &tree, queries, [](const RTreeEntry& e, bool) {
        return e.mbr.hi_x < 0.5 && e.mbr.hi_y < 0.5;
      });
  const auto item = browser.Next();
  ASSERT_TRUE(item.found);
  EXPECT_EQ(item.object, 1u);
}

TEST_F(BbsTest, AttributeProviderChangesSkyline) {
  // Two points where 1 is spatially dominated but has a better attribute.
  const std::vector<Point> points = {{0.1, 0.1}, {0.2, 0.2}};
  const std::vector<Point> queries = {{0, 0}};
  RTree tree = BuildTree(points);

  std::vector<DistVector> attrs = {{5.0}, {1.0}};
  EuclideanSkylineBrowser browser(
      &tree, queries, nullptr,
      [&](ObjectId id) { return attrs[id]; }, DistVector{1.0});
  std::vector<ObjectId> got;
  for (auto item = browser.Next(); item.found; item = browser.Next()) {
    ASSERT_EQ(item.vector.size(), 2u);  // 1 distance + 1 attribute
    got.push_back(item.object);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<ObjectId>{0, 1}));
}

TEST_F(BbsTest, EmptyTree) {
  RTree tree = BuildTree({});
  EuclideanSkylineBrowser browser(&tree, {{0.5, 0.5}});
  EXPECT_FALSE(browser.Next().found);
}

}  // namespace
}  // namespace msq
