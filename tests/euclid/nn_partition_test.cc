#include "euclid/nn_partition.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "euclid/bnl.h"

namespace msq {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  return points;
}

TEST(NnPartitionTest, MatchesBnlTwoQueries) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto points = RandomPoints(200, seed);
    const auto queries = RandomPoints(2, seed + 50);
    EXPECT_EQ(NnPartitionEuclideanSkyline(points, queries),
              BnlEuclideanSkyline(points, queries))
        << "seed " << seed;
  }
}

TEST(NnPartitionTest, MatchesBnlThreeQueries) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto points = RandomPoints(150, seed + 10);
    const auto queries = RandomPoints(3, seed + 70);
    EXPECT_EQ(NnPartitionEuclideanSkyline(points, queries),
              BnlEuclideanSkyline(points, queries))
        << "seed " << seed;
  }
}

TEST(NnPartitionTest, GenericVectors) {
  const std::vector<DistVector> vectors = {
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {5, 5}};
  EXPECT_EQ(NnPartitionSkyline(vectors), SkylineIndices(vectors));
}

TEST(NnPartitionTest, SinglePointAndEmpty) {
  EXPECT_TRUE(NnPartitionSkyline({}).empty());
  EXPECT_EQ(NnPartitionSkyline({{3, 4}}), (std::vector<std::size_t>{0}));
}

TEST(NnPartitionTest, DuplicateVectorsAllReported) {
  const std::vector<DistVector> vectors = {{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(NnPartitionSkyline(vectors), (std::vector<std::size_t>{0, 1}));
}

TEST(NnPartitionTest, NonFiniteExcluded) {
  const std::vector<DistVector> vectors = {{kInfDist, 1}, {5, 5}};
  EXPECT_EQ(NnPartitionSkyline(vectors), (std::vector<std::size_t>{1}));
}

TEST(NnPartitionTest, StatsExposeDuplicatedWork) {
  // The paper's criticism of the NN-partition method: in >2 dimensions,
  // duplicate skyline reports arise from independent to-do regions.
  const auto points = RandomPoints(150, 9);
  const auto queries = RandomPoints(4, 99);
  NnPartitionStats stats;
  const auto skyline = NnPartitionEuclideanSkyline(points, queries, &stats);
  EXPECT_EQ(skyline, BnlEuclideanSkyline(points, queries));
  EXPECT_GT(stats.regions_processed, skyline.size());
  EXPECT_GT(stats.duplicate_reports, 0u);
  EXPECT_GE(stats.nn_probes, stats.regions_processed);
}

TEST(NnPartitionTest, TwoDimensionsNoDuplicatesAfterDedup) {
  // In 2-D the region dedupe leaves no duplicated reports — consistent
  // with the paper noting the problem only "in a high dimensional space".
  const auto points = RandomPoints(200, 13);
  const auto queries = RandomPoints(2, 77);
  NnPartitionStats stats;
  NnPartitionEuclideanSkyline(points, queries, &stats);
  EXPECT_EQ(stats.duplicate_reports, 0u);
}

}  // namespace
}  // namespace msq
