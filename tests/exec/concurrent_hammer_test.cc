// The PR's end-to-end concurrency acceptance test: eight workers run a
// mixed CE/EDC/LBC batch against one shared fault-injected workload. Every
// result must match its single-threaded oracle, transient faults must be
// absorbed by retries mid-flight, and the per-query counters must sum to
// exactly the registry totals the run produced — nothing lost, nothing
// double-counted.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};
constexpr std::size_t kWorkers = 8;
constexpr std::size_t kQueries = 8;  // x 3 algorithms = 24 requests

TEST(ConcurrentHammerTest, MixedAlgorithmsUnderFaultsMatchTheOracles) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  // Pools small enough that the 24 queries constantly evict each other's
  // pages, sharded so they do it concurrently.
  config.graph_buffer_frames = 32;
  config.index_buffer_frames = 32;
  // Transient-only faults with a deep retry budget: per-read failure odds
  // after 10 attempts are ~1e-10, so every query must still succeed — the
  // faults exercise the retry path, not the error path.
  FaultInjectionConfig faults;
  faults.seed = 13;
  faults.transient_read_rate = 0.08;
  config.fault_injection = faults;
  config.retry.max_read_attempts = 10;
  config.retry.max_write_attempts = 10;
  Workload workload(config);  // decorators start disarmed

  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const SkylineQuerySpec spec = workload.SampleQuery(3, 50 + q);
    for (const Algorithm algorithm : kAlgorithms) {
      QueryRequest request;
      request.algorithm = algorithm;
      request.spec = spec;
      requests.push_back(request);
    }
  }

  // Single-threaded fault-free oracles on the identical stack.
  std::vector<SkylineResult> oracles;
  for (const QueryRequest& request : requests) {
    oracles.push_back(
        RunSkylineQuery(request.algorithm, workload.dataset(), request.spec));
    ASSERT_TRUE(oracles.back().status.ok());
  }

  workload.ResetBuffers();
  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  const std::uint64_t net0 =
      registry.counter(obs::metric::kNetworkBufferHits)->value() +
      registry.counter(obs::metric::kNetworkBufferMisses)->value();
  const std::uint64_t idx0 =
      registry.counter(obs::metric::kIndexBufferHits)->value() +
      registry.counter(obs::metric::kIndexBufferMisses)->value();
  const std::uint64_t settled0 =
      registry.counter(obs::metric::kSettledNodes)->value();

  workload.graph_faults()->Arm();
  workload.index_faults()->Arm();
  QueryExecutor executor(workload.dataset(), kWorkers);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  workload.graph_faults()->Disarm();
  workload.index_faults()->Disarm();

  ASSERT_EQ(results.size(), oracles.size());
  std::uint64_t net_sum = 0, idx_sum = 0, settled_sum = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SkylineResult& got = results[i];
    const SkylineResult& want = oracles[i];
    ASSERT_TRUE(got.status.ok())
        << "request " << i << ": " << got.status.ToString();
    ASSERT_EQ(got.skyline.size(), want.skyline.size()) << "request " << i;
    for (std::size_t j = 0; j < got.skyline.size(); ++j) {
      EXPECT_EQ(got.skyline[j].object, want.skyline[j].object);
      EXPECT_EQ(got.skyline[j].vector, want.skyline[j].vector);
    }
    net_sum += got.stats.network_page_accesses;
    idx_sum += got.stats.index_page_accesses;
    settled_sum += got.stats.settled_nodes;
  }

  // Conservation: the 24 private per-query counters partition the global
  // registry deltas exactly — the whole point of the thread-local counter
  // substrate.
  EXPECT_EQ(net_sum,
            registry.counter(obs::metric::kNetworkBufferHits)->value() +
                registry.counter(obs::metric::kNetworkBufferMisses)->value() -
                net0);
  EXPECT_EQ(idx_sum,
            registry.counter(obs::metric::kIndexBufferHits)->value() +
                registry.counter(obs::metric::kIndexBufferMisses)->value() -
                idx0);
  EXPECT_EQ(settled_sum,
            registry.counter(obs::metric::kSettledNodes)->value() - settled0);

  // The fault schedule really fired, and retries absorbed all of it.
  EXPECT_GT(workload.graph_faults()->fault_stats().injected_transient_reads +
                workload.index_faults()->fault_stats().injected_transient_reads,
            0u);
  EXPECT_GT(workload.graph_buffer().stats().read_retries +
                workload.index_buffer().stats().read_retries,
            0u);
  EXPECT_EQ(workload.graph_buffer().stats().failed_reads, 0u);
  EXPECT_EQ(workload.index_buffer().stats().failed_reads, 0u);
}

}  // namespace
}  // namespace msq
