// Absolute deadlines (QueryLimits::deadline_at) racing query start under
// the executor pool — the serving layer's degradation path. Three regimes:
// already expired at submission (queue wait ate everything), expiring
// somewhere inside the queue while a burst saturates the workers, and a
// deadline generous enough to never fire. In every regime each future must
// resolve promptly with a well-formed result — truncated-empty for the
// expired case, never a hang, never an error status — and the flight
// recorder must account for every query exactly once.
#include <cstddef>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"

namespace msq {
namespace {

class DeadlineRaceTest : public ::testing::Test {
 protected:
  DeadlineRaceTest() {
    WorkloadConfig config;
    config.network = NetworkGenConfig{150, 200, 11, 0.0};
    config.object_density = 1.0;
    workload_ = std::make_unique<Workload>(config);
  }

  QueryRequest MakeRequest(std::uint64_t seed, double deadline_at) {
    QueryRequest request;
    request.algorithm = Algorithm::kCe;
    request.spec = workload_->SampleQuery(3, seed);
    request.spec.limits.deadline_at = deadline_at;
    return request;
  }

  std::unique_ptr<Workload> workload_;
};

TEST_F(DeadlineRaceTest, ExpiredAtSubmissionReturnsTruncatedEmpty) {
  obs::TelemetryConfig telemetry;
  obs::MetricsRegistry registry;
  telemetry.registry = &registry;
  QueryExecutor executor(workload_->dataset(), 2, telemetry);
  const double long_gone = MonotonicSeconds() - 1.0;
  std::vector<std::future<SkylineResult>> futures;
  for (std::uint64_t i = 0; i < 16; ++i) {
    futures.push_back(executor.Submit(MakeRequest(i, long_gone)));
  }
  for (std::future<SkylineResult>& f : futures) {
    const SkylineResult result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.truncation_reason, StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(result.skyline.empty());
    // The short-circuit runs before the algorithm: no pages touched.
    EXPECT_EQ(result.stats.network_pages + result.stats.index_pages, 0u);
  }
  executor.Quiesce();
  EXPECT_EQ(executor.telemetry().flight_recorder().total_recorded(), 16u);
}

TEST_F(DeadlineRaceTest, DeadlineExpiringInsideTheQueueNeverHangs) {
  // One worker and a deep burst: by construction most requests start
  // after their deadline passed, some race it exactly. All must resolve.
  obs::TelemetryConfig telemetry;
  obs::MetricsRegistry registry;
  telemetry.registry = &registry;
  QueryExecutor executor(workload_->dataset(), 1, telemetry);
  constexpr std::size_t kBurst = 48;
  const double now = MonotonicSeconds();
  std::vector<std::future<SkylineResult>> futures;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    // Deadlines staggered from "already passed" to ~20 ms out, so the
    // expiry point sweeps through the queue as the worker drains it.
    const double deadline = now + 0.0005 * static_cast<double>(i);
    futures.push_back(executor.Submit(MakeRequest(100 + i, deadline)));
  }
  std::size_t expired = 0;
  std::size_t completed = 0;
  for (std::future<SkylineResult>& f : futures) {
    // A hang here is the bug this test exists for; gtest's per-test
    // timeout plus the future resolving is the assertion.
    const SkylineResult result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    if (result.truncated) {
      EXPECT_EQ(result.truncation_reason, StatusCode::kDeadlineExceeded);
      ++expired;
    } else {
      ++completed;
    }
  }
  EXPECT_EQ(expired + completed, kBurst);
  // The stagger guarantees at least the first request (deadline == now,
  // already behind by the time the worker picks it up) expires.
  EXPECT_GE(expired, 1u);
  executor.Quiesce();
  EXPECT_EQ(executor.telemetry().flight_recorder().total_recorded(),
            kBurst);
}

TEST_F(DeadlineRaceTest, GenerousDeadlineDoesNotTruncate) {
  obs::TelemetryConfig telemetry;
  obs::MetricsRegistry registry;
  telemetry.registry = &registry;
  QueryExecutor executor(workload_->dataset(), 2, telemetry);
  const double far_out = MonotonicSeconds() + 300.0;
  std::vector<std::future<SkylineResult>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    futures.push_back(executor.Submit(MakeRequest(200 + i, far_out)));
  }
  for (std::future<SkylineResult>& f : futures) {
    const SkylineResult result = f.get();
    EXPECT_TRUE(result.status.ok());
    EXPECT_FALSE(result.truncated);
    EXPECT_GT(result.skyline.size(), 0u);
  }
}

TEST_F(DeadlineRaceTest, DeadlineAtComposesWithOtherLimits) {
  // deadline_at and max_page_accesses are independent guardrails; when
  // the deadline already passed, it wins before a page is ever counted.
  obs::TelemetryConfig telemetry;
  obs::MetricsRegistry registry;
  telemetry.registry = &registry;
  QueryExecutor executor(workload_->dataset(), 1, telemetry);
  QueryRequest request = MakeRequest(300, MonotonicSeconds() - 0.5);
  request.spec.limits.max_page_accesses = 1;
  const SkylineResult result = executor.Submit(std::move(request)).get();
  EXPECT_TRUE(result.status.ok());
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.truncation_reason, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.skyline.empty());
}

}  // namespace
}  // namespace msq
