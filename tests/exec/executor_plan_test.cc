// EXPLAIN plans under concurrency: every plan a QueryExecutor hands back
// must reconcile exactly with that result's own QueryStats — across 8
// workers sharing the buffer pools, across a warm cross-query cache where
// lookups split into memo/wavefront/computed tiers, and with telemetry
// disabled. The suite name matches the tools/check.sh tsan -R "Executor"
// filter, so everything here also runs under TSan.
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_cache.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "obs/plan.h"
#include "obs/telemetry.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};

std::unique_ptr<Workload> SharedWorkload() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  config.graph_buffer_frames = 32;
  config.index_buffer_frames = 32;
  return std::make_unique<Workload>(config);
}

std::vector<QueryRequest> PlanRequests(const Workload& workload,
                                       std::size_t queries) {
  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < queries; ++q) {
    const SkylineQuerySpec spec = workload.SampleQuery(3, 40 + q);
    for (const Algorithm algorithm : kAlgorithms) {
      QueryRequest request;
      request.algorithm = algorithm;
      request.spec = spec;
      request.collect_plan = true;
      requests.push_back(request);
    }
  }
  return requests;
}

// The per-result oracle: the plan must be present and every counter in it
// must equal this result's QueryStats exactly.
void ExpectPlanReconciles(const QueryRequest& request,
                          const SkylineResult& result, std::size_t index) {
  ASSERT_TRUE(result.status.ok()) << "request " << index;
  ASSERT_TRUE(result.plan.has_value()) << "request " << index;
  EXPECT_EQ(obs::ReconcilePlan(*result.plan, result.stats), "")
      << "request " << index;
  EXPECT_EQ(result.plan->algorithm, AlgorithmName(request.algorithm));
  EXPECT_EQ(result.plan->skyline_size, result.skyline.size());
  EXPECT_EQ(result.plan->sources.size(), request.spec.sources.size());
}

TEST(ExecutorPlanTest, PlansReconcileAcrossEightWorkers) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = PlanRequests(*workload, 6);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  QueryExecutor executor(workload->dataset(), /*workers=*/8, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);

  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ExpectPlanReconciles(requests[i], results[i], i);
    // Cacheless executor: every exact lookup was a real computation.
    EXPECT_EQ(results[i].plan->tiers.memo_hits, 0u);
    EXPECT_EQ(results[i].plan->tiers.wavefront_exact, 0u);
    EXPECT_GT(results[i].plan->tiers.computed, 0u);
  }
  executor.Quiesce();

  // With telemetry on, every explain-requested completion is retained for
  // /explainz.
  const obs::PlanStore& plans = executor.telemetry().plans();
  EXPECT_EQ(plans.retained_total(), requests.size());
  const std::vector<obs::RetainedPlan> retained = plans.Snapshot();
  ASSERT_EQ(retained.size(), requests.size());
  std::set<std::uint64_t> sequences;
  std::uint64_t last_sequence = 0;
  for (const obs::RetainedPlan& entry : retained) {
    EXPECT_GT(entry.sequence, last_sequence);  // unique and ascending
    last_sequence = entry.sequence;
    sequences.insert(entry.sequence);
    EXPECT_TRUE(entry.plan.algorithm == "ce" ||
                entry.plan.algorithm == "edc" ||
                entry.plan.algorithm == "lbc")
        << entry.plan.algorithm;
    // The executor mints a trace context for every query, so the retained
    // plan can point back at its trace.
    EXPECT_EQ(entry.trace_id.size(), 32u);
  }
  EXPECT_EQ(sequences.size(), requests.size());
}

TEST(ExecutorPlanTest, WarmCachePlansAttributeTiersAndStillReconcile) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = PlanRequests(*workload, 4);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig telemetry_config;
  telemetry_config.registry = &registry;
  QueryCacheConfig cache_config;
  QueryExecutor executor(workload->dataset(), /*workers=*/8, cache_config,
                         telemetry_config);

  // Cold round populates the cross-query cache; warm round repeats the
  // identical batch, so memo/wavefront hits must appear.
  const std::vector<SkylineResult> cold = executor.RunBatch(requests);
  const std::vector<SkylineResult> warm = executor.RunBatch(requests);

  std::uint64_t warm_tier_hits = 0;
  std::uint64_t warm_cache_hits = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ExpectPlanReconciles(requests[i], cold[i], i);
    ExpectPlanReconciles(requests[i], warm[i], i);
    // ReconcilePlan already pinned plan.cache_hits to the stats cache
    // counters; the tier attribution is the collector's independent view
    // of where those hits landed.
    warm_tier_hits += warm[i].plan->tiers.memo_hits +
                      warm[i].plan->tiers.wavefront_exact;
    warm_cache_hits += warm[i].stats.cache_memo_hits +
                       warm[i].stats.cache_wavefront_hits;
  }
  EXPECT_GT(warm_cache_hits, 0u);
  EXPECT_GT(warm_tier_hits, 0u);

  executor.Quiesce();
  EXPECT_EQ(executor.telemetry().plans().retained_total(),
            2 * requests.size());
}

TEST(ExecutorPlanTest, CallerWithoutFlagGetsNoPlanCopy) {
  auto workload = SharedWorkload();
  std::vector<QueryRequest> requests = PlanRequests(*workload, 2);
  for (QueryRequest& request : requests) request.collect_plan = false;

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  QueryExecutor executor(workload->dataset(), /*workers=*/4, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  for (const SkylineResult& result : results) {
    ASSERT_TRUE(result.status.ok());
    EXPECT_FALSE(result.plan.has_value());
  }
  executor.Quiesce();
  // Without the flag no full plan is built or retained, but the /explainz
  // pruning rollup still accounted every completion.
  EXPECT_EQ(executor.telemetry().plans().retained_total(), 0u);
  EXPECT_EQ(executor.telemetry().plans().accounted_total(), requests.size());
}

TEST(ExecutorPlanTest, DisabledTelemetryStillHonorsExplicitPlanRequests) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = PlanRequests(*workload, 2);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  config.enabled = false;
  QueryExecutor executor(workload->dataset(), /*workers=*/4, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    // An explicit collect_plan still yields a reconciling plan; without
    // telemetry there is no trace session, so it has no phase breakdown.
    ASSERT_TRUE(results[i].plan.has_value());
    EXPECT_EQ(obs::ReconcilePlan(*results[i].plan, results[i].stats), "");
    EXPECT_TRUE(results[i].plan->phases.empty());
  }
  // ...and nothing is retained for /explainz.
  EXPECT_EQ(executor.telemetry().plans().retained_total(), 0u);
}

}  // namespace
}  // namespace msq
