// Serving telemetry through QueryExecutor: per-algorithm histograms whose
// count/sum reconcile exactly with the counter registry and with the
// batch's own QueryStats totals, flight records matching the batch,
// slow-query auto-capture (threshold triggers, bounded log, profile
// reuse), and the disabled configuration recording nothing. The suite name
// matches the tools/check.sh tsan -R "Executor" filter, so everything here
// also runs under TSan.
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};

std::unique_ptr<Workload> SharedWorkload() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  config.graph_buffer_frames = 32;
  config.index_buffer_frames = 32;
  return std::make_unique<Workload>(config);
}

std::vector<QueryRequest> MixedRequests(const Workload& workload,
                                        std::size_t queries) {
  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < queries; ++q) {
    const SkylineQuerySpec spec = workload.SampleQuery(3, 40 + q);
    for (const Algorithm algorithm : kAlgorithms) {
      QueryRequest request;
      request.algorithm = algorithm;
      request.spec = spec;
      requests.push_back(request);
    }
  }
  return requests;
}

// What each per-algorithm histogram family must add up to, accumulated
// from the batch's own results.
struct AlgoTotals {
  std::uint64_t queries = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t network_accesses = 0;
  std::uint64_t index_accesses = 0;
  std::uint64_t settled = 0;
};

TEST(ExecutorTelemetryTest, HistogramsReconcileWithQueryStats) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 5);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  QueryExecutor executor(workload->dataset(), /*workers=*/3, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);

  std::map<std::string, AlgoTotals> expected;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << "request " << i;
    AlgoTotals& totals =
        expected[std::string(AlgorithmName(requests[i].algorithm))];
    ++totals.queries;
    totals.latency_us += static_cast<std::uint64_t>(
        std::llround(results[i].stats.total_seconds * 1e6));
    totals.network_accesses += results[i].stats.network_page_accesses;
    totals.index_accesses += results[i].stats.index_page_accesses;
    totals.settled += results[i].stats.settled_nodes;
  }
  ASSERT_EQ(expected.size(), 3u);

  std::uint64_t histogram_query_count = 0;
  for (const auto& [algo, totals] : expected) {
    const std::string prefix = "exec." + algo + ".";
    const obs::Histogram* latency =
        registry.histogram(prefix + obs::metric::kLatencyUsHist);
    // _count/_sum reconcile exactly: same integers as ΣQueryStats.
    EXPECT_EQ(latency->count(), totals.queries) << algo;
    EXPECT_EQ(latency->sum(), totals.latency_us) << algo;
    histogram_query_count += latency->count();

    const obs::Histogram* network =
        registry.histogram(prefix + obs::metric::kNetworkPageAccessesHist);
    EXPECT_EQ(network->count(), totals.queries) << algo;
    EXPECT_EQ(network->sum(), totals.network_accesses) << algo;

    const obs::Histogram* index =
        registry.histogram(prefix + obs::metric::kIndexPageAccessesHist);
    EXPECT_EQ(index->count(), totals.queries) << algo;
    EXPECT_EQ(index->sum(), totals.index_accesses) << algo;

    const obs::Histogram* settled =
        registry.histogram(prefix + obs::metric::kSettledNodesHist);
    EXPECT_EQ(settled->count(), totals.queries) << algo;
    EXPECT_EQ(settled->sum(), totals.settled) << algo;
  }
  // ...and with the counter registry: one exec.queries tick per histogram
  // observation.
  EXPECT_EQ(registry.counter(obs::metric::kExecQueries)->value(),
            requests.size());
  EXPECT_EQ(histogram_query_count, requests.size());
  EXPECT_EQ(executor.telemetry().flight_recorder().total_recorded(),
            requests.size());
}

TEST(ExecutorTelemetryTest, FlightRecordsMatchTheBatch) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 4);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  QueryExecutor executor(workload->dataset(), /*workers=*/3, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);

  const std::vector<obs::FlightRecord> records =
      executor.telemetry().flight_recorder().Snapshot();
  ASSERT_EQ(records.size(), requests.size());

  // Completion order is arbitrary; match records to requests through the
  // spec digest (distinct per (algorithm, spec) here).
  std::map<std::uint64_t, const SkylineResult*> by_digest;
  std::map<std::uint64_t, std::uint64_t> settled_by_digest;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::uint64_t digest =
        QuerySpecDigest(requests[i].algorithm, requests[i].spec);
    ASSERT_EQ(by_digest.count(digest), 0u) << "digest collision";
    by_digest[digest] = &results[i];
    settled_by_digest[digest] = results[i].stats.settled_nodes;
  }

  std::uint64_t last_sequence = 0;
  for (const obs::FlightRecord& record : records) {
    EXPECT_GT(record.sequence, last_sequence);  // unique and ascending
    last_sequence = record.sequence;
    ASSERT_EQ(by_digest.count(record.spec_digest), 1u);
    const SkylineResult& result = *by_digest[record.spec_digest];
    EXPECT_EQ(record.status_code, 0);
    EXPECT_EQ(record.truncation, 0u);
    EXPECT_EQ(record.skyline_size, result.skyline.size());
    EXPECT_EQ(record.source_count, 3u);
    EXPECT_EQ(record.settled_nodes, settled_by_digest[record.spec_digest]);
    EXPECT_EQ(record.network_hits + record.network_misses,
              result.stats.network_page_accesses);
    EXPECT_EQ(record.index_hits + record.index_misses,
              result.stats.index_page_accesses);
    EXPECT_DOUBLE_EQ(record.wall_seconds, result.stats.total_seconds);
  }
}

TEST(ExecutorTelemetryTest, SlowCaptureTriggersAndStaysBounded) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 4);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  config.slow_wall_seconds = 1e-12;  // everything is slow
  config.slow_log_capacity = 3;
  QueryExecutor executor(workload->dataset(), /*workers=*/2, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  for (const SkylineResult& result : results) {
    ASSERT_TRUE(result.status.ok());
  }
  // Slow captures run after the futures resolve; wait for the workers to
  // finish them before reading the telemetry.
  executor.Quiesce();

  // Every completion crossed the threshold, but the log stays bounded and
  // re-runs stop once it fills.
  EXPECT_EQ(registry.counter(obs::metric::kExecSlowQueries)->value(),
            requests.size());
  const std::vector<obs::SlowQueryRecord> slow =
      executor.telemetry().SlowQueries();
  ASSERT_EQ(slow.size(), config.slow_log_capacity);
  EXPECT_EQ(
      registry.counter(obs::metric::kExecSlowQueriesCaptured)->value(),
      slow.size());
  for (const obs::SlowQueryRecord& record : slow) {
    // The captured profile is a real traced run of the same query: spans
    // present and deterministic work matching the original completion.
    ASSERT_FALSE(record.profile.spans.empty());
    EXPECT_EQ(record.profile.TotalCounters().settled_nodes,
              record.summary.settled_nodes);
    EXPECT_GT(record.recapture_wall_seconds, 0.0);
  }
}

TEST(ExecutorTelemetryTest, SlowCaptureReusesCallerRequestedProfile) {
  auto workload = SharedWorkload();
  std::vector<QueryRequest> requests = MixedRequests(*workload, 2);
  for (QueryRequest& request : requests) request.collect_profile = true;

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  config.slow_page_accesses = 1;  // page-budget trigger this time
  config.slow_log_capacity = requests.size();
  QueryExecutor executor(workload->dataset(), /*workers=*/2, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  for (const SkylineResult& result : results) {
    ASSERT_TRUE(result.status.ok());
    ASSERT_TRUE(result.profile.has_value());
  }
  executor.Quiesce();

  const std::vector<obs::SlowQueryRecord> slow =
      executor.telemetry().SlowQueries();
  ASSERT_EQ(slow.size(), requests.size());
  for (const obs::SlowQueryRecord& record : slow) {
    // Reuse path: the caller already paid for the trace, so the retained
    // profile is that run — recapture time equals the original wall time.
    EXPECT_DOUBLE_EQ(record.recapture_wall_seconds,
                     record.summary.wall_seconds);
    EXPECT_FALSE(record.profile.spans.empty());
  }
}

TEST(ExecutorTelemetryTest, DisabledTelemetryRecordsNothing) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 2);

  obs::MetricsRegistry registry;
  obs::TelemetryConfig config;
  config.registry = &registry;
  config.enabled = false;
  config.slow_wall_seconds = 1e-12;  // would fire if telemetry were on
  QueryExecutor executor(workload->dataset(), /*workers=*/2, config);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  for (const SkylineResult& result : results) {
    ASSERT_TRUE(result.status.ok());
    EXPECT_FALSE(result.skyline.empty());
  }

  EXPECT_FALSE(executor.telemetry().enabled());
  EXPECT_EQ(executor.telemetry().flight_recorder().total_recorded(), 0u);
  EXPECT_TRUE(executor.telemetry().SlowQueries().empty());
  EXPECT_EQ(registry.counter(obs::metric::kExecQueries)->value(), 0u);
  EXPECT_EQ(registry.counter(obs::metric::kExecSlowQueries)->value(), 0u);
  std::size_t histograms = 0;
  registry.ForEachHistogram(
      [&histograms](const std::string&, const obs::Histogram&) {
        ++histograms;
      });
  EXPECT_EQ(histograms, 0u);  // created lazily, only on RecordQuery
}

}  // namespace
}  // namespace msq
