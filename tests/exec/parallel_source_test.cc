// Intra-query source parallelism (core/query.h TaskRunner + exec/task_pool.h
// + CE's EmissionFeed): running one NN stream per source on a helper pool
// must be invisible in the results — skylines byte-identical to sequential
// execution, stats deterministic across repeats, truncation still a
// confirmed prefix, and storage faults still a clean typed error. Suite
// names contain "Parallel" so tools/check.sh picks them up for the TSan
// pass.
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ce.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "exec/task_pool.h"
#include "gen/workloads.h"

namespace msq {
namespace {

// --- TaskPool ------------------------------------------------------------

TEST(TaskPoolParallelTest, RunsEveryTaskExactlyOnce) {
  TaskPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> runs{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&runs] { runs.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(runs.load(), 100);
  // The pool is reusable: a second batch completes too.
  std::vector<std::function<void()>> again;
  for (int i = 0; i < 7; ++i) again.push_back([&runs] { runs.fetch_add(1); });
  pool.RunAll(std::move(again));
  EXPECT_EQ(runs.load(), 107);
}

TEST(TaskPoolParallelTest, ZeroThreadPoolRunsInlineOnCaller) {
  TaskPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const std::thread::id self = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran_on] { ran_on.push_back(std::this_thread::get_id()); });
  }
  pool.RunAll(std::move(tasks));
  ASSERT_EQ(ran_on.size(), 10u);
  for (const std::thread::id id : ran_on) EXPECT_EQ(id, self);
}

TEST(TaskPoolParallelTest, ConcurrentBatchesFromManyCallersAllComplete) {
  TaskPool pool(2);
  std::atomic<int> runs{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &runs] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 8; ++i) {
          tasks.push_back([&runs] { runs.fetch_add(1); });
        }
        pool.RunAll(std::move(tasks));
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(runs.load(), 4 * 20 * 8);
}

// --- CE with a runner ----------------------------------------------------

std::unique_ptr<Workload> ParallelWorkload(std::size_t static_dims = 0) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{240, 310, 7, 0.4};
  config.object_density = 1.0;
  config.object_seed = 23;
  config.static_attr_dims = static_dims;
  config.graph_buffer_frames = 48;
  config.index_buffer_frames = 48;
  return std::make_unique<Workload>(config);
}

void ExpectSameSkyline(const SkylineResult& got, const SkylineResult& want) {
  ASSERT_TRUE(got.status.ok());
  ASSERT_TRUE(want.status.ok());
  ASSERT_EQ(got.skyline.size(), want.skyline.size());
  for (std::size_t j = 0; j < got.skyline.size(); ++j) {
    EXPECT_EQ(got.skyline[j].object, want.skyline[j].object);
    EXPECT_EQ(got.skyline[j].vector, want.skyline[j].vector);
  }
}

TEST(CeParallelSourceTest, SkylineByteIdenticalToSequential) {
  // Both CE variants: the filtering two-phase (no static attrs) and the
  // generalized one (attrs present) consume the same feed abstraction.
  for (const std::size_t dims : {std::size_t{0}, std::size_t{2}}) {
    auto workload = ParallelWorkload(dims);
    TaskPool pool(3);
    for (std::uint64_t seed = 70; seed < 74; ++seed) {
      SkylineQuerySpec spec = workload->SampleQuery(4, seed);

      workload->ResetBuffers();
      const SkylineResult sequential = RunCe(workload->dataset(), spec);

      workload->ResetBuffers();
      spec.runner = &pool;
      const SkylineResult parallel = RunCe(workload->dataset(), spec);

      ExpectSameSkyline(parallel, sequential);
      // The merge consumes the identical emission sequence, so the
      // emission-derived counters agree exactly; only read-ahead (pages,
      // settled nodes) may exceed the sequential run's.
      EXPECT_EQ(parallel.stats.candidate_count,
                sequential.stats.candidate_count)
          << "dims=" << dims << " seed=" << seed;
      EXPECT_EQ(parallel.stats.skyline_size, sequential.stats.skyline_size);
      EXPECT_GE(parallel.stats.settled_nodes, sequential.stats.settled_nodes);
    }
  }
}

TEST(CeParallelSourceTest, StatsAreDeterministicAcrossRepeats) {
  auto workload = ParallelWorkload();
  TaskPool pool(4);
  SkylineQuerySpec spec = workload->SampleQuery(3, 91);
  spec.runner = &pool;

  workload->ResetBuffers();
  const SkylineResult first = RunCe(workload->dataset(), spec);
  workload->ResetBuffers();
  const SkylineResult second = RunCe(workload->dataset(), spec);

  ExpectSameSkyline(second, first);
  // Chunk boundaries depend on the deterministic consumption order, not on
  // thread scheduling, so even the read-ahead work is reproducible.
  EXPECT_EQ(first.stats.settled_nodes, second.stats.settled_nodes);
  EXPECT_EQ(first.stats.network_pages, second.stats.network_pages);
  EXPECT_EQ(first.stats.network_page_accesses,
            second.stats.network_page_accesses);
  EXPECT_EQ(first.stats.index_page_accesses,
            second.stats.index_page_accesses);
  EXPECT_GT(first.stats.network_page_accesses, 0u);
}

TEST(CeParallelSourceTest, TruncatedRunStillConfirmedPrefix) {
  auto workload = ParallelWorkload();
  TaskPool pool(3);
  SkylineQuerySpec spec = workload->SampleQuery(3, 55);

  workload->ResetBuffers();
  const SkylineResult full = RunCe(workload->dataset(), spec);
  ASSERT_TRUE(full.status.ok());
  ASSERT_GE(full.skyline.size(), 1u);
  std::set<ObjectId> full_ids;
  for (const SkylineEntry& entry : full.skyline) full_ids.insert(entry.object);

  spec.runner = &pool;
  spec.limits.max_page_accesses = 60;
  workload->ResetBuffers();
  const SkylineResult cut = RunCe(workload->dataset(), spec);
  ASSERT_TRUE(cut.status.ok());
  if (cut.truncated) {
    EXPECT_EQ(cut.truncation_reason, StatusCode::kResourceExhausted);
    // Progressive guarantee survives the read-ahead: every reported entry
    // is a true skyline point.
    for (const SkylineEntry& entry : cut.skyline) {
      EXPECT_TRUE(full_ids.count(entry.object) > 0)
          << "object " << entry.object << " not in the full skyline";
    }
  } else {
    ExpectSameSkyline(cut, full);
  }
}

TEST(CeParallelSourceTest, StorageFaultSurfacesAsCleanTypedError) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{120, 150, 3, 0.0};
  config.object_density = 1.0;
  config.graph_buffer_frames = 16;
  config.index_buffer_frames = 16;
  config.fault_injection = FaultInjectionConfig{};
  Workload workload(config);
  TaskPool pool(3);

  SkylineQuerySpec spec = workload.SampleQuery(3, 8);
  spec.runner = &pool;
  workload.ResetBuffers();
  // Persistent read errors on the graph side: some production task's page
  // read fails past the retry policy, and the fault must cross the refill
  // barrier into the usual clean-error result — never a crash or a torn
  // skyline.
  workload.graph_faults()->FailNextReads(20, StatusCode::kIoError);
  const SkylineResult result = RunCe(workload.dataset(), spec);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.skyline.empty());

  // The stack answers cleanly once the scripted faults are spent. A run
  // aborts at its first fault, so leftovers can survive it — every failing
  // retry drains at least one, bounding the loop.
  SkylineResult retry;
  for (int attempt = 0; attempt < 25; ++attempt) {
    workload.ResetBuffers();
    retry = RunCe(workload.dataset(), spec);
    if (retry.status.ok()) break;
  }
  EXPECT_TRUE(retry.status.ok());
  EXPECT_GE(retry.skyline.size(), 1u);
}

// --- Executor integration ------------------------------------------------

TEST(QueryExecutorParallelTest, SourcePoolBatchMatchesSequential) {
  auto workload = ParallelWorkload();
  std::vector<QueryRequest> requests;
  std::vector<SkylineResult> expected;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    QueryRequest request;
    request.algorithm = Algorithm::kCe;
    request.spec = workload->SampleQuery(3, seed);
    expected.push_back(
        RunSkylineQuery(request.algorithm, workload->dataset(), request.spec));
    requests.push_back(std::move(request));
  }

  // Inter-query workers times intra-query helpers over the one shared
  // buffer pool — the TSan hammer shape — and still byte-identical
  // answers.
  QueryExecutor executor(workload->dataset(), /*workers=*/3);
  executor.EnableSourceParallelism(2);
  ASSERT_NE(executor.source_pool(), nullptr);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ExpectSameSkyline(results[i], expected[i]);
  }
}

TEST(QueryExecutorParallelTest, SpecRunnerOverridesExecutorPool) {
  auto workload = ParallelWorkload();
  TaskPool caller_pool(1);
  QueryExecutor executor(workload->dataset(), /*workers=*/2);
  executor.EnableSourceParallelism(2);

  QueryRequest request;
  request.algorithm = Algorithm::kCe;
  request.spec = workload->SampleQuery(2, 44);
  request.spec.runner = &caller_pool;
  const SkylineResult result = executor.Submit(std::move(request)).get();
  EXPECT_TRUE(result.status.ok());
  EXPECT_GE(result.skyline.size(), 1u);
}

}  // namespace
}  // namespace msq
