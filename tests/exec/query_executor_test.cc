// QueryExecutor: concurrent batches over one shared dataset must be
// indistinguishable from sequential runs — same skylines byte for byte,
// same deterministic work counters, exactly reconciling profiles, and
// per-query limits that only bite the query that set them.
#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};

std::unique_ptr<Workload> SharedWorkload() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  // Multi-shard pools small enough that queries evict each other's pages.
  config.graph_buffer_frames = 32;
  config.index_buffer_frames = 32;
  return std::make_unique<Workload>(config);
}

std::vector<QueryRequest> MixedRequests(const Workload& workload,
                                        std::size_t queries) {
  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < queries; ++q) {
    const SkylineQuerySpec spec = workload.SampleQuery(3, 40 + q);
    for (const Algorithm algorithm : kAlgorithms) {
      QueryRequest request;
      request.algorithm = algorithm;
      request.spec = spec;
      requests.push_back(request);
    }
  }
  return requests;
}

TEST(QueryExecutorTest, BatchMatchesSequentialRunByteForByte) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 6);

  std::vector<SkylineResult> expected;
  for (const QueryRequest& request : requests) {
    expected.push_back(
        RunSkylineQuery(request.algorithm, workload->dataset(), request.spec));
    ASSERT_TRUE(expected.back().status.ok());
  }

  QueryExecutor executor(workload->dataset(), /*workers=*/4);
  EXPECT_EQ(executor.worker_count(), 4u);
  const std::vector<SkylineResult> results =
      executor.RunBatch(requests);

  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SkylineResult& got = results[i];
    const SkylineResult& want = expected[i];
    ASSERT_TRUE(got.status.ok()) << "request " << i;
    EXPECT_FALSE(got.truncated);
    // Same entries in the same order with bit-identical distance vectors:
    // concurrency must not perturb the deterministic computation.
    ASSERT_EQ(got.skyline.size(), want.skyline.size()) << "request " << i;
    for (std::size_t j = 0; j < got.skyline.size(); ++j) {
      EXPECT_EQ(got.skyline[j].object, want.skyline[j].object);
      EXPECT_EQ(got.skyline[j].vector, want.skyline[j].vector);
    }
    // Cache-independent work counters are identical too; page counts are
    // not compared (they depend on what the shared pool happens to hold).
    EXPECT_EQ(got.stats.settled_nodes, want.stats.settled_nodes);
    EXPECT_EQ(got.stats.candidate_count, want.stats.candidate_count);
    EXPECT_EQ(got.stats.skyline_size, want.stats.skyline_size);
  }
}

TEST(QueryExecutorTest, SubmitResolvesFuturesInAnyOrder) {
  auto workload = SharedWorkload();
  QueryExecutor executor(workload->dataset(), /*workers=*/2);

  std::vector<std::future<SkylineResult>> futures;
  for (std::size_t q = 0; q < 4; ++q) {
    QueryRequest request;
    request.algorithm = Algorithm::kCe;
    request.spec = workload->SampleQuery(2, 70 + q);
    futures.push_back(executor.Submit(std::move(request)));
  }
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const SkylineResult result = futures[q].get();
    EXPECT_TRUE(result.status.ok()) << "query " << q;
    EXPECT_FALSE(result.skyline.empty()) << "query " << q;
  }
}

TEST(QueryExecutorTest, ProfilesReconcileExactlyUnderConcurrency) {
  auto workload = SharedWorkload();
  std::vector<QueryRequest> requests = MixedRequests(*workload, 4);
  for (QueryRequest& request : requests) request.collect_profile = true;

  QueryExecutor executor(workload->dataset(), /*workers=*/4);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const SkylineResult& result = results[i];
    ASSERT_TRUE(result.status.ok()) << "request " << i;
    ASSERT_TRUE(result.profile.has_value()) << "request " << i;
    // Per-thread counter attribution: the profile's span totals must equal
    // this query's own stats even while three other workers hammer the
    // same two buffer pools.
    const obs::SpanCounters totals = result.profile->TotalCounters();
    EXPECT_EQ(totals.settled_nodes, result.stats.settled_nodes);
    EXPECT_EQ(totals.network_hits + totals.network_misses,
              result.stats.network_page_accesses);
    EXPECT_EQ(totals.network_misses, result.stats.network_pages);
    EXPECT_EQ(totals.index_hits + totals.index_misses,
              result.stats.index_page_accesses);
    EXPECT_EQ(totals.index_misses, result.stats.index_pages);
  }
}

TEST(QueryExecutorTest, LimitsBindOnlyTheQueryThatSetThem) {
  auto workload = SharedWorkload();
  const SkylineQuerySpec spec = workload->SampleQuery(3, 90);

  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < 8; ++q) {
    QueryRequest request;
    request.algorithm = Algorithm::kCe;
    request.spec = spec;
    // Every other request runs under a budget far below what the query
    // needs; its neighbors must stay unlimited.
    if (q % 2 == 1) request.spec.limits.max_page_accesses = 10;
    requests.push_back(request);
  }

  const SkylineResult reference =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_FALSE(reference.skyline.empty());

  QueryExecutor executor(workload->dataset(), /*workers=*/4);
  const std::vector<SkylineResult> results = executor.RunBatch(requests);

  for (std::size_t q = 0; q < results.size(); ++q) {
    const SkylineResult& result = results[q];
    ASSERT_TRUE(result.status.ok()) << "request " << q;
    if (q % 2 == 1) {
      EXPECT_TRUE(result.truncated) << "request " << q;
      EXPECT_EQ(result.truncation_reason, StatusCode::kResourceExhausted);
    } else {
      EXPECT_FALSE(result.truncated) << "request " << q;
      EXPECT_EQ(testing::SkylineIds(result), testing::SkylineIds(reference));
    }
  }
}

}  // namespace
}  // namespace msq
