// Trace-id conservation under concurrency: an 8-worker executor hammered
// with requests that each carry their own TraceContext must stamp every
// flight record with exactly the submitted id — no swaps between workers,
// no re-mints, no losses. Also pins the tail-sampling guarantees end to
// end: 100% of slow/errored/truncated runs retained, fast runs retained
// only when head-sampled. Suite name starts with "Executor" so the
// tools/check.sh tsan filter picks it up.
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/telemetry.h"
#include "obs/trace_store.h"

namespace msq {
namespace {

std::unique_ptr<Workload> SmallWorkload() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{180, 240, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 19;
  return std::make_unique<Workload>(config);
}

TEST(ExecutorTraceConservationTest, EveryFlightRecordKeepsItsTraceId) {
  const std::unique_ptr<Workload> workload = SmallWorkload();
  constexpr std::size_t kQueries = 96;
  obs::MetricsRegistry registry;
  obs::TelemetryConfig telemetry;
  telemetry.registry = &registry;
  telemetry.flight_capacity = kQueries;
  telemetry.trace_capacity = kQueries;
  QueryExecutor executor(workload->dataset(), /*workers=*/8, telemetry);

  // Each request carries a distinct minted context; every 6th is
  // head-sampled via its flags bit.
  std::map<std::string, bool> submitted;  // trace hex -> sampled
  std::vector<QueryRequest> requests;
  constexpr Algorithm kAlgos[] = {Algorithm::kCe, Algorithm::kEdc,
                                  Algorithm::kLbc};
  for (std::size_t q = 0; q < kQueries; ++q) {
    QueryRequest request;
    request.algorithm = kAlgos[q % 3];
    request.spec = workload->SampleQuery(3, 100 + q);
    request.trace_context = obs::TraceContext::Mint(q % 6 == 0);
    submitted[request.trace_context.TraceIdHex()] =
        request.trace_context.sampled;
    requests.push_back(std::move(request));
  }
  ASSERT_EQ(submitted.size(), kQueries);
  const std::vector<SkylineResult> results =
      executor.RunBatch(std::move(requests));
  for (const SkylineResult& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }

  // Conservation: the flight ring holds exactly the submitted ids, each
  // once.
  const std::vector<obs::FlightRecord> flight =
      executor.telemetry().flight_recorder().Snapshot();
  ASSERT_EQ(flight.size(), kQueries);
  std::set<std::string> seen;
  char hex[33];
  for (const obs::FlightRecord& record : flight) {
    std::snprintf(hex, sizeof(hex), "%016llx%016llx",
                  static_cast<unsigned long long>(record.trace_id_hi),
                  static_cast<unsigned long long>(record.trace_id_lo));
    EXPECT_TRUE(submitted.count(hex) == 1) << "unknown trace id " << hex;
    EXPECT_TRUE(seen.insert(hex).second) << "duplicate trace id " << hex;
  }
  EXPECT_EQ(seen.size(), kQueries);

  // Tail policy on a healthy fast batch: retained == the head-sampled
  // subset (every retained id was submitted sampled, and every sampled id
  // that completed cleanly is retained).
  std::size_t sampled_and_clean = 0;
  for (std::size_t i = 0; i < flight.size(); ++i) {
    std::snprintf(hex, sizeof(hex), "%016llx%016llx",
                  static_cast<unsigned long long>(flight[i].trace_id_hi),
                  static_cast<unsigned long long>(flight[i].trace_id_lo));
    const bool sampled = submitted.at(hex);
    const bool clean =
        flight[i].status_code == 0 && flight[i].truncation == 0;
    if (sampled && clean) ++sampled_and_clean;
    if (!sampled && clean) {
      // Fast, healthy, unsampled: must NOT be retained (no slow
      // thresholds are configured, so nothing else can keep it).
      EXPECT_FALSE(executor.telemetry().trace_store().Contains(
          flight[i].trace_id_hi, flight[i].trace_id_lo))
          << "unsampled fast trace retained: " << hex;
    }
    if (sampled) {
      EXPECT_TRUE(executor.telemetry().trace_store().Contains(
          flight[i].trace_id_hi, flight[i].trace_id_lo))
          << "head-sampled trace dropped: " << hex;
    }
  }
  EXPECT_GT(sampled_and_clean, 0u);
}

TEST(ExecutorTraceConservationTest, SlowAndTruncatedAlwaysRetained) {
  const std::unique_ptr<Workload> workload = SmallWorkload();
  obs::MetricsRegistry registry;
  obs::TelemetryConfig telemetry;
  telemetry.registry = &registry;
  // Every query is "slow": wall threshold below any real execution.
  telemetry.slow_wall_seconds = 1e-9;
  telemetry.trace_capacity = 64;
  QueryExecutor executor(workload->dataset(), /*workers=*/4, telemetry);

  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < 16; ++q) {
    QueryRequest request;
    request.algorithm = Algorithm::kCe;
    request.spec = workload->SampleQuery(2, 300 + q);
    if (q % 4 == 0) {
      request.spec.limits.max_page_accesses = 1;  // force truncation
    }
    request.trace_context = obs::TraceContext::Mint(/*sampled=*/false);
    requests.push_back(std::move(request));
  }
  const std::vector<SkylineResult> results =
      executor.RunBatch(std::move(requests));
  std::size_t truncated = 0;
  for (const SkylineResult& result : results) truncated += result.truncated;
  EXPECT_GT(truncated, 0u);
  // 100% retention: one trace per query, none dropped despite sampled
  // being false on every context.
  EXPECT_EQ(executor.telemetry().trace_store().retained_total(), 16u);
  for (const obs::RetainedTrace& trace :
       executor.telemetry().trace_store().Snapshot()) {
    EXPECT_TRUE(trace.reason == obs::RetainReason::kSlow ||
                trace.reason == obs::RetainReason::kTruncated ||
                trace.reason == obs::RetainReason::kError);
  }
}

}  // namespace
}  // namespace msq
