#include "gen/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "testing_support.h"

namespace msq {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIoTest, LocationsRoundTrip) {
  RoadNetwork network = testing::MakeGridNetwork(4);
  const auto objects = GenerateObjects(network, 40, 3);
  const std::string path = TempPath("msq_objects.txt");
  ASSERT_TRUE(SaveLocations(path, objects));

  std::string error;
  const auto loaded = LoadLocations(path, network, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ((*loaded)[i].edge, objects[i].edge);
    EXPECT_DOUBLE_EQ((*loaded)[i].offset, objects[i].offset);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyLocations) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_empty_objects.txt");
  ASSERT_TRUE(SaveLocations(path, {}));
  std::string error;
  const auto loaded = LoadLocations(path, network, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LocationsRejectInvalidEdge) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_bad_objects.txt");
  std::ofstream(path) << "1\n999 0.0\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  EXPECT_NE(error.find("outside the network"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LocationsRejectInvalidOffset) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_bad_offset.txt");
  std::ofstream(path) << "1\n0 99.0\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LocationsRejectTruncatedFile) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_truncated.txt");
  std::ofstream(path) << "3\n0 0.0\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LocationsMissingFile) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  std::string error;
  EXPECT_FALSE(
      LoadLocations("/no/such/objects.txt", network, &error).has_value());
}

TEST(DatasetIoTest, LocationsRejectGarbageHeader) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_garbage_header.txt");
  std::ofstream(path) << "not-a-count\n0 0.0\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  EXPECT_NE(error.find("malformed header"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LocationsRejectGarbageRow) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_garbage_row.txt");
  std::ofstream(path) << "2\n0 0.0\nzzz qqq\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LyingHugeHeaderFailsWithoutHugeAllocation) {
  // A header claiming 2^60 rows over a two-line file must fail on the
  // missing data, not attempt a multi-exabyte reserve.
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_huge_header.txt");
  std::ofstream(path) << "1152921504606846976\n0 0.0\n";
  std::string error;
  EXPECT_FALSE(LoadLocations(path, network, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, AttributesRejectLyingHugeHeader) {
  const std::string path = TempPath("msq_huge_attr_header.txt");
  std::ofstream(path) << "1152921504606846976 1152921504606846976\n0.5\n";
  std::string error;
  EXPECT_FALSE(LoadAttributes(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, AttributesRejectTruncatedFile) {
  const std::string path = TempPath("msq_attr_truncated.txt");
  std::ofstream(path) << "3 2\n0.1 0.2\n";
  std::string error;
  EXPECT_FALSE(LoadAttributes(path, &error).has_value());
  EXPECT_NE(error.find("missing attribute line"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, AttributesRejectGarbageValue) {
  const std::string path = TempPath("msq_attr_garbage.txt");
  std::ofstream(path) << "1 2\n0.1 banana\n";
  std::string error;
  EXPECT_FALSE(LoadAttributes(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, AttributesRoundTrip) {
  const auto attrs = GenerateStaticAttributes(25, 3, 9);
  const std::string path = TempPath("msq_attrs.txt");
  ASSERT_TRUE(SaveAttributes(path, attrs));
  std::string error;
  const auto loaded = LoadAttributes(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), attrs.size());
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    ASSERT_EQ((*loaded)[i].size(), attrs[i].size());
    for (std::size_t d = 0; d < attrs[i].size(); ++d) {
      EXPECT_DOUBLE_EQ((*loaded)[i][d], attrs[i][d]);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, AttributesRejectRaggedRows) {
  const std::string path = TempPath("msq_ragged.txt");
  std::ofstream(path) << "2 2\n0.1 0.2\n0.3\n";
  std::string error;
  EXPECT_FALSE(LoadAttributes(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CommentsAndBlanksIgnored) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = TempPath("msq_comments.txt");
  std::ofstream(path) << "# objects\n\n2\n0 0.0\n# middle\n1 0.1\n";
  std::string error;
  const auto loaded = LoadLocations(path, network, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadedDatasetRunsQueries) {
  // Full external-data path: save network + objects + attributes, reload
  // everything, and run a query.
  RoadNetwork network = GenerateNetwork({.node_count = 200,
                                         .edge_count = 280,
                                         .seed = 5});
  const auto objects = GenerateObjects(network, 100, 7);
  const auto attrs = GenerateStaticAttributes(100, 1, 9);

  const std::string net_path = TempPath("msq_full_net.txt");
  const std::string obj_path = TempPath("msq_full_obj.txt");
  const std::string attr_path = TempPath("msq_full_attr.txt");
  ASSERT_TRUE(network.SaveToEdgeListFile(net_path));
  ASSERT_TRUE(SaveLocations(obj_path, objects));
  ASSERT_TRUE(SaveAttributes(attr_path, attrs));

  std::string error;
  auto net2 = RoadNetwork::LoadFromEdgeListFile(net_path, &error);
  ASSERT_TRUE(net2.has_value()) << error;
  auto obj2 = LoadLocations(obj_path, *net2, &error);
  ASSERT_TRUE(obj2.has_value()) << error;
  auto attr2 = LoadAttributes(attr_path, &error);
  ASSERT_TRUE(attr2.has_value()) << error;

  WorkloadConfig config;
  Workload workload(config, std::move(*net2), std::move(*obj2),
                    std::move(*attr2));
  const auto spec = workload.SampleQuery(3, 2);
  const auto naive =
      RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
  const auto lbc =
      RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(lbc), testing::SkylineIds(naive));

  std::remove(net_path.c_str());
  std::remove(obj_path.c_str());
  std::remove(attr_path.c_str());
}

}  // namespace
}  // namespace msq
