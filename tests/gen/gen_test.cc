#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "gen/query_gen.h"
#include "gen/workloads.h"

namespace msq {
namespace {

TEST(NetworkGenTest, ExactNodeAndEdgeCounts) {
  const RoadNetwork network = GenerateNetwork({.node_count = 500,
                                               .edge_count = 700,
                                               .seed = 1});
  EXPECT_EQ(network.node_count(), 500u);
  EXPECT_EQ(network.edge_count(), 700u);
}

TEST(NetworkGenTest, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RoadNetwork network = GenerateNetwork({.node_count = 300,
                                                 .edge_count = 310,
                                                 .seed = seed});
    EXPECT_TRUE(network.IsConnected()) << "seed " << seed;
  }
}

TEST(NetworkGenTest, TreeEdgeCountClamped) {
  // Requesting fewer edges than n-1 still yields a connected tree.
  const RoadNetwork network = GenerateNetwork({.node_count = 100,
                                               .edge_count = 10,
                                               .seed = 2});
  EXPECT_EQ(network.edge_count(), 99u);
  EXPECT_TRUE(network.IsConnected());
}

TEST(NetworkGenTest, DeterministicForSeed) {
  const RoadNetwork a = GenerateNetwork({.node_count = 200,
                                         .edge_count = 260,
                                         .seed = 9});
  const RoadNetwork b = GenerateNetwork({.node_count = 200,
                                         .edge_count = 260,
                                         .seed = 9});
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.EdgeAt(e).u, b.EdgeAt(e).u);
    EXPECT_EQ(a.EdgeAt(e).v, b.EdgeAt(e).v);
    EXPECT_DOUBLE_EQ(a.EdgeAt(e).length, b.EdgeAt(e).length);
  }
}

TEST(NetworkGenTest, NodesInsideUnitSquare) {
  const RoadNetwork network = GenerateNetwork({.node_count = 400,
                                               .edge_count = 520,
                                               .seed = 4});
  const Mbr box = network.BoundingBox();
  EXPECT_GE(box.lo_x, 0.0);
  EXPECT_LE(box.hi_x, 1.0);
  EXPECT_GE(box.lo_y, 0.0);
  EXPECT_LE(box.hi_y, 1.0);
}

TEST(NetworkGenTest, CurvatureLengthensEdges) {
  const RoadNetwork curved = GenerateNetwork({.node_count = 200,
                                              .edge_count = 260,
                                              .seed = 6,
                                              .curvature = 0.5});
  std::size_t longer = 0;
  for (EdgeId e = 0; e < curved.edge_count(); ++e) {
    const auto& edge = curved.EdgeAt(e);
    const Dist euclid = EuclideanDistance(curved.NodePosition(edge.u),
                                          curved.NodePosition(edge.v));
    EXPECT_GE(edge.length + 1e-12, euclid);
    if (edge.length > euclid * 1.0001) ++longer;
  }
  EXPECT_GT(longer, curved.edge_count() / 2);
}

TEST(NetworkGenTest, DensityControlsDetourRatio) {
  // Sparse (tree-like) networks detour more than dense ones — the δ
  // mechanism Section 6.3 relies on.
  const RoadNetwork sparse = GenerateNetwork({.node_count = 800,
                                              .edge_count = 800,
                                              .seed = 10});
  const RoadNetwork dense = GenerateNetwork({.node_count = 800,
                                             .edge_count = 2000,
                                             .seed = 10});
  const double delta_sparse = MeasureDetourRatio(sparse, 60, 5);
  const double delta_dense = MeasureDetourRatio(dense, 60, 5);
  EXPECT_GT(delta_sparse, delta_dense);
  EXPECT_GE(delta_dense, 1.0);
}

TEST(ObjectGenTest, CountAndValidity) {
  const RoadNetwork network = GenerateNetwork({.node_count = 200,
                                               .edge_count = 300,
                                               .seed = 3});
  const auto objects = GenerateObjects(network, 150, 7);
  EXPECT_EQ(objects.size(), 150u);
  for (const Location& loc : objects) {
    EXPECT_TRUE(network.IsValidLocation(loc));
  }
}

TEST(ObjectGenTest, DensityScalesWithEdges) {
  const RoadNetwork network = GenerateNetwork({.node_count = 200,
                                               .edge_count = 300,
                                               .seed = 3});
  EXPECT_EQ(GenerateObjectsWithDensity(network, 0.5, 1).size(), 150u);
  EXPECT_EQ(GenerateObjectsWithDensity(network, 2.0, 1).size(), 600u);
}

TEST(ObjectGenTest, StaticAttributesShape) {
  const auto attrs = GenerateStaticAttributes(50, 3, 11);
  ASSERT_EQ(attrs.size(), 50u);
  for (const auto& vec : attrs) {
    ASSERT_EQ(vec.size(), 3u);
    for (const Dist v : vec) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(QueryGenTest, QueriesValidAndClustered) {
  const RoadNetwork network = GenerateNetwork({.node_count = 2000,
                                               .edge_count = 2800,
                                               .seed = 5});
  const auto queries = GenerateQueries(network, 10, 0.1, 13);
  ASSERT_EQ(queries.size(), 10u);
  Mbr box = Mbr::Empty();
  for (const Location& loc : queries) {
    ASSERT_TRUE(network.IsValidLocation(loc));
    box.Extend(network.LocationPosition(loc));
  }
  // All queries fit a window of ~sqrt(0.1) side (plus edge slack).
  EXPECT_LE(box.hi_x - box.lo_x, std::sqrt(0.1) + 0.25);
  EXPECT_LE(box.hi_y - box.lo_y, std::sqrt(0.1) + 0.25);
}

TEST(WorkloadsTest, PaperPresetSizes) {
  const auto ca = PaperNetworkConfig(NetworkClass::kCA);
  EXPECT_EQ(ca.node_count, 3044u);
  EXPECT_EQ(ca.edge_count, 3607u);
  const auto na = PaperNetworkConfig(NetworkClass::kNA, 0.1);
  EXPECT_EQ(na.node_count, 8632u);
  EXPECT_EQ(na.edge_count, 10304u);
  EXPECT_EQ(NetworkClassName(NetworkClass::kAU), "AU");
}

TEST(WorkloadsTest, BuildsConsistentDataset) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 420, 21, 0.0};
  config.object_density = 0.5;
  Workload workload(config);
  Dataset d = workload.dataset();
  EXPECT_EQ(d.object_count(), 210u);
  EXPECT_EQ(d.object_rtree->size(), 210u);
  EXPECT_EQ(workload.edge_rtree().size(), 420u);
  EXPECT_EQ(d.static_dims(), 0u);
  const auto spec = workload.SampleQuery(4, 2);
  EXPECT_EQ(spec.sources.size(), 4u);
}

TEST(WorkloadsTest, ResetBuffersGivesColdCache) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 22, 0.0};
  Workload workload(config);
  // Touch some pages.
  std::vector<AdjacencyEntry> adj;
  Dataset d = workload.dataset();
  d.graph_pager->AdjacencyOf(0, &adj);
  EXPECT_GT(d.graph_buffer->stats().accesses(), 0u);
  workload.ResetBuffers();
  EXPECT_EQ(d.graph_buffer->stats().accesses(), 0u);
  EXPECT_EQ(d.graph_buffer->resident_pages(), 0u);
}

TEST(WorkloadsTest, StaticAttrsWired) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{200, 260, 23, 0.0};
  config.static_attr_dims = 2;
  Workload workload(config);
  Dataset d = workload.dataset();
  EXPECT_EQ(d.static_dims(), 2u);
  EXPECT_EQ(d.StaticAttributesOf(0).size(), 2u);
  const DistVector mins = d.MinStaticAttributes();
  ASSERT_EQ(mins.size(), 2u);
  for (ObjectId id = 0; id < d.object_count(); ++id) {
    const auto attrs = d.StaticAttributesOf(id);
    EXPECT_LE(mins[0], attrs[0]);
    EXPECT_LE(mins[1], attrs[1]);
  }
}

TEST(WorkloadsTest, ContinentalPresetSizes) {
  const auto cnt = PaperNetworkConfig(NetworkClass::kCNT);
  EXPECT_EQ(cnt.node_count, 431590u);
  EXPECT_EQ(cnt.edge_count, 515210u);
  EXPECT_EQ(NetworkClassName(NetworkClass::kCNT), "CNT");
  const auto continental = ContinentalNetworkConfig();
  EXPECT_EQ(continental.node_count, 863180u);
  EXPECT_EQ(continental.edge_count, 1030420u);
}

TEST(WorkloadsTest, GraphLayoutsBuildAndNameCorrectly) {
  EXPECT_EQ(GraphLayoutName(GraphLayout::kSeed), "seed");
  EXPECT_EQ(GraphLayoutName(GraphLayout::kHilbert), "hilbert");
  EXPECT_EQ(GraphLayoutName(GraphLayout::kHilbertCsr), "hilbert_csr");
  for (const GraphLayout layout :
       {GraphLayout::kSeed, GraphLayout::kHilbert, GraphLayout::kHilbertCsr}) {
    WorkloadConfig config;
    config.network = NetworkGenConfig{300, 400, 31, 0.3};
    config.graph_layout = layout;
    Workload workload(config);
    EXPECT_EQ(workload.graph_layout(), layout);
    Dataset d = workload.dataset();
    std::vector<AdjacencyEntry> adj;
    for (NodeId node = 0; node < workload.network().node_count(); ++node) {
      ASSERT_TRUE(d.graph_pager->AdjacencyOf(node, &adj).ok());
      ASSERT_EQ(adj.size(), workload.network().Adjacent(node).size());
    }
    // Edge-keyed structures are layout-invariant.
    EXPECT_EQ(workload.objects().size(),
              GenerateObjectsWithDensity(workload.network(), 0.5, 7).size());
  }
}

TEST(WorkloadsTest, RelayoutSwapsPagerAndBumpsEpoch) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 32, 0.0};
  config.landmark_count = 2;
  Workload workload(config);
  const std::uint64_t seed_epoch = workload.dataset().graph_pager->layout_epoch();
  const std::size_t seed_pages = workload.dataset().graph_pager->page_count();
  workload.Relayout(GraphLayout::kHilbertCsr);
  Dataset d = workload.dataset();
  EXPECT_NE(d.graph_pager->layout_epoch(), seed_epoch);
  EXPECT_LT(d.graph_pager->page_count(), seed_pages);
  EXPECT_NE(d.landmarks, nullptr);
  std::vector<AdjacencyEntry> adj;
  ASSERT_TRUE(d.graph_pager->AdjacencyOf(0, &adj).ok());
}

TEST(HilbertTest, BijectionAndUnitStepsOnSmallGrids) {
  for (std::uint32_t order = 1; order <= 5; ++order) {
    const std::uint32_t n = 1u << order;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cell_of(
        static_cast<std::size_t>(n) * n, {n, n});
    for (std::uint32_t y = 0; y < n; ++y) {
      for (std::uint32_t x = 0; x < n; ++x) {
        const std::uint64_t d = HilbertIndex(order, x, y);
        ASSERT_LT(d, cell_of.size());
        ASSERT_EQ(cell_of[d].first, n) << "duplicate index " << d;
        cell_of[d] = {x, y};
      }
    }
    // Consecutive indices are grid neighbors (the defining property that
    // makes the curve locality-preserving; Morton order violates it).
    for (std::size_t d = 1; d < cell_of.size(); ++d) {
      const auto [x0, y0] = cell_of[d - 1];
      const auto [x1, y1] = cell_of[d];
      const std::uint32_t manhattan =
          (x0 > x1 ? x0 - x1 : x1 - x0) + (y0 > y1 ? y0 - y1 : y1 - y0);
      EXPECT_EQ(manhattan, 1u) << "order " << order << " step " << d;
    }
  }
}

TEST(HilbertTest, KnownOrder2Curve) {
  // The canonical 4x4 curve starting at (0,0).
  const std::pair<std::uint32_t, std::uint32_t> expected[16] = {
      {0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 2}, {0, 3}, {1, 3}, {1, 2},
      {2, 2}, {2, 3}, {3, 3}, {3, 2}, {3, 1}, {2, 1}, {2, 0}, {3, 0}};
  for (std::uint64_t d = 0; d < 16; ++d) {
    EXPECT_EQ(HilbertIndex(2, expected[d].first, expected[d].second), d);
  }
}

TEST(HilbertTest, NodeOrderIsPermutation) {
  const RoadNetwork network = GenerateNetwork({.node_count = 300,
                                               .edge_count = 400,
                                               .seed = 11});
  const std::vector<NodeId> order = HilbertNodeOrder(network);
  ASSERT_EQ(order.size(), network.node_count());
  std::vector<bool> seen(order.size(), false);
  for (NodeId id : order) {
    ASSERT_LT(id, order.size());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(HilbertTest, RelabelPreservesEdgesAndDistances) {
  const RoadNetwork network = GenerateNetwork({.node_count = 250,
                                               .edge_count = 330,
                                               .seed = 12,
                                               .curvature = 0.8});
  const std::vector<NodeId> order = HilbertNodeOrder(network);
  std::vector<NodeId> inverse(order.size());
  for (NodeId k = 0; k < order.size(); ++k) inverse[order[k]] = k;

  const RoadNetwork relabeled = RelabelNodes(network, order);
  ASSERT_EQ(relabeled.node_count(), network.node_count());
  ASSERT_EQ(relabeled.edge_count(), network.edge_count());
  for (EdgeId e = 0; e < network.edge_count(); ++e) {
    const auto& old_edge = network.EdgeAt(e);
    const auto& new_edge = relabeled.EdgeAt(e);
    EXPECT_EQ(new_edge.u, inverse[old_edge.u]);
    EXPECT_EQ(new_edge.v, inverse[old_edge.v]);
    // Bit-exact: relabeling must not perturb any network distance.
    EXPECT_EQ(new_edge.length, old_edge.length);
  }
  for (NodeId id = 0; id < network.node_count(); ++id) {
    EXPECT_EQ(relabeled.NodePosition(inverse[id]).x, network.NodePosition(id).x);
    EXPECT_EQ(relabeled.NodePosition(inverse[id]).y, network.NodePosition(id).y);
  }
}

TEST(HilbertTest, RelabelImprovesIdLocality) {
  // Average |id(u) - id(v)| over edges should shrink after the relabel:
  // the generator's insertion order carries no spatial meaning.
  const RoadNetwork network = GenerateNetwork({.node_count = 2000,
                                               .edge_count = 2600,
                                               .seed = 13});
  const RoadNetwork relabeled =
      RelabelNodes(network, HilbertNodeOrder(network));
  auto id_span = [](const RoadNetwork& net) {
    double total = 0.0;
    for (EdgeId e = 0; e < net.edge_count(); ++e) {
      const auto& edge = net.EdgeAt(e);
      total += edge.u > edge.v ? edge.u - edge.v : edge.v - edge.u;
    }
    return total / static_cast<double>(net.edge_count());
  };
  EXPECT_LT(id_span(relabeled), 0.5 * id_span(network));
}

}  // namespace
}  // namespace msq
