#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "gen/query_gen.h"
#include "gen/workloads.h"

namespace msq {
namespace {

TEST(NetworkGenTest, ExactNodeAndEdgeCounts) {
  const RoadNetwork network = GenerateNetwork({.node_count = 500,
                                               .edge_count = 700,
                                               .seed = 1});
  EXPECT_EQ(network.node_count(), 500u);
  EXPECT_EQ(network.edge_count(), 700u);
}

TEST(NetworkGenTest, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RoadNetwork network = GenerateNetwork({.node_count = 300,
                                                 .edge_count = 310,
                                                 .seed = seed});
    EXPECT_TRUE(network.IsConnected()) << "seed " << seed;
  }
}

TEST(NetworkGenTest, TreeEdgeCountClamped) {
  // Requesting fewer edges than n-1 still yields a connected tree.
  const RoadNetwork network = GenerateNetwork({.node_count = 100,
                                               .edge_count = 10,
                                               .seed = 2});
  EXPECT_EQ(network.edge_count(), 99u);
  EXPECT_TRUE(network.IsConnected());
}

TEST(NetworkGenTest, DeterministicForSeed) {
  const RoadNetwork a = GenerateNetwork({.node_count = 200,
                                         .edge_count = 260,
                                         .seed = 9});
  const RoadNetwork b = GenerateNetwork({.node_count = 200,
                                         .edge_count = 260,
                                         .seed = 9});
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.EdgeAt(e).u, b.EdgeAt(e).u);
    EXPECT_EQ(a.EdgeAt(e).v, b.EdgeAt(e).v);
    EXPECT_DOUBLE_EQ(a.EdgeAt(e).length, b.EdgeAt(e).length);
  }
}

TEST(NetworkGenTest, NodesInsideUnitSquare) {
  const RoadNetwork network = GenerateNetwork({.node_count = 400,
                                               .edge_count = 520,
                                               .seed = 4});
  const Mbr box = network.BoundingBox();
  EXPECT_GE(box.lo_x, 0.0);
  EXPECT_LE(box.hi_x, 1.0);
  EXPECT_GE(box.lo_y, 0.0);
  EXPECT_LE(box.hi_y, 1.0);
}

TEST(NetworkGenTest, CurvatureLengthensEdges) {
  const RoadNetwork curved = GenerateNetwork({.node_count = 200,
                                              .edge_count = 260,
                                              .seed = 6,
                                              .curvature = 0.5});
  std::size_t longer = 0;
  for (EdgeId e = 0; e < curved.edge_count(); ++e) {
    const auto& edge = curved.EdgeAt(e);
    const Dist euclid = EuclideanDistance(curved.NodePosition(edge.u),
                                          curved.NodePosition(edge.v));
    EXPECT_GE(edge.length + 1e-12, euclid);
    if (edge.length > euclid * 1.0001) ++longer;
  }
  EXPECT_GT(longer, curved.edge_count() / 2);
}

TEST(NetworkGenTest, DensityControlsDetourRatio) {
  // Sparse (tree-like) networks detour more than dense ones — the δ
  // mechanism Section 6.3 relies on.
  const RoadNetwork sparse = GenerateNetwork({.node_count = 800,
                                              .edge_count = 800,
                                              .seed = 10});
  const RoadNetwork dense = GenerateNetwork({.node_count = 800,
                                             .edge_count = 2000,
                                             .seed = 10});
  const double delta_sparse = MeasureDetourRatio(sparse, 60, 5);
  const double delta_dense = MeasureDetourRatio(dense, 60, 5);
  EXPECT_GT(delta_sparse, delta_dense);
  EXPECT_GE(delta_dense, 1.0);
}

TEST(ObjectGenTest, CountAndValidity) {
  const RoadNetwork network = GenerateNetwork({.node_count = 200,
                                               .edge_count = 300,
                                               .seed = 3});
  const auto objects = GenerateObjects(network, 150, 7);
  EXPECT_EQ(objects.size(), 150u);
  for (const Location& loc : objects) {
    EXPECT_TRUE(network.IsValidLocation(loc));
  }
}

TEST(ObjectGenTest, DensityScalesWithEdges) {
  const RoadNetwork network = GenerateNetwork({.node_count = 200,
                                               .edge_count = 300,
                                               .seed = 3});
  EXPECT_EQ(GenerateObjectsWithDensity(network, 0.5, 1).size(), 150u);
  EXPECT_EQ(GenerateObjectsWithDensity(network, 2.0, 1).size(), 600u);
}

TEST(ObjectGenTest, StaticAttributesShape) {
  const auto attrs = GenerateStaticAttributes(50, 3, 11);
  ASSERT_EQ(attrs.size(), 50u);
  for (const auto& vec : attrs) {
    ASSERT_EQ(vec.size(), 3u);
    for (const Dist v : vec) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(QueryGenTest, QueriesValidAndClustered) {
  const RoadNetwork network = GenerateNetwork({.node_count = 2000,
                                               .edge_count = 2800,
                                               .seed = 5});
  const auto queries = GenerateQueries(network, 10, 0.1, 13);
  ASSERT_EQ(queries.size(), 10u);
  Mbr box = Mbr::Empty();
  for (const Location& loc : queries) {
    ASSERT_TRUE(network.IsValidLocation(loc));
    box.Extend(network.LocationPosition(loc));
  }
  // All queries fit a window of ~sqrt(0.1) side (plus edge slack).
  EXPECT_LE(box.hi_x - box.lo_x, std::sqrt(0.1) + 0.25);
  EXPECT_LE(box.hi_y - box.lo_y, std::sqrt(0.1) + 0.25);
}

TEST(WorkloadsTest, PaperPresetSizes) {
  const auto ca = PaperNetworkConfig(NetworkClass::kCA);
  EXPECT_EQ(ca.node_count, 3044u);
  EXPECT_EQ(ca.edge_count, 3607u);
  const auto na = PaperNetworkConfig(NetworkClass::kNA, 0.1);
  EXPECT_EQ(na.node_count, 8632u);
  EXPECT_EQ(na.edge_count, 10304u);
  EXPECT_EQ(NetworkClassName(NetworkClass::kAU), "AU");
}

TEST(WorkloadsTest, BuildsConsistentDataset) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 420, 21, 0.0};
  config.object_density = 0.5;
  Workload workload(config);
  Dataset d = workload.dataset();
  EXPECT_EQ(d.object_count(), 210u);
  EXPECT_EQ(d.object_rtree->size(), 210u);
  EXPECT_EQ(workload.edge_rtree().size(), 420u);
  EXPECT_EQ(d.static_dims(), 0u);
  const auto spec = workload.SampleQuery(4, 2);
  EXPECT_EQ(spec.sources.size(), 4u);
}

TEST(WorkloadsTest, ResetBuffersGivesColdCache) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 22, 0.0};
  Workload workload(config);
  // Touch some pages.
  std::vector<AdjacencyEntry> adj;
  Dataset d = workload.dataset();
  d.graph_pager->AdjacencyOf(0, &adj);
  EXPECT_GT(d.graph_buffer->stats().accesses(), 0u);
  workload.ResetBuffers();
  EXPECT_EQ(d.graph_buffer->stats().accesses(), 0u);
  EXPECT_EQ(d.graph_buffer->resident_pages(), 0u);
}

TEST(WorkloadsTest, StaticAttrsWired) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{200, 260, 23, 0.0};
  config.static_attr_dims = 2;
  Workload workload(config);
  Dataset d = workload.dataset();
  EXPECT_EQ(d.static_dims(), 2u);
  EXPECT_EQ(d.StaticAttributesOf(0).size(), 2u);
  const DistVector mins = d.MinStaticAttributes();
  ASSERT_EQ(mins.size(), 2u);
  for (ObjectId id = 0; id < d.object_count(); ++id) {
    const auto attrs = d.StaticAttributesOf(id);
    EXPECT_LE(mins[0], attrs[0]);
    EXPECT_LE(mins[1], attrs[1]);
  }
}

}  // namespace
}  // namespace msq
