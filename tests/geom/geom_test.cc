#include <cmath>

#include <gtest/gtest.h>

#include "geom/mbr.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace msq {
namespace {

// ---------------------------------------------------------------- Point

TEST(PointTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, LerpEndpointsAndMidpoint) {
  const Point a{0, 0}, b{2, 4};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  const Point mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 1.0);
  EXPECT_DOUBLE_EQ(mid.y, 2.0);
}

// ---------------------------------------------------------------- Mbr

TEST(MbrTest, EmptyBehaviour) {
  Mbr empty = Mbr::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);
  EXPECT_FALSE(empty.Intersects(empty));
  // Extending an empty box adopts the other box.
  Mbr box = Mbr::FromPoint({1, 2});
  empty.Extend(box);
  EXPECT_EQ(empty, box);
}

TEST(MbrTest, FromSegmentNormalizesCorners) {
  const Mbr box = Mbr::FromSegment({3, 1}, {0, 2});
  EXPECT_DOUBLE_EQ(box.lo_x, 0.0);
  EXPECT_DOUBLE_EQ(box.hi_x, 3.0);
  EXPECT_DOUBLE_EQ(box.lo_y, 1.0);
  EXPECT_DOUBLE_EQ(box.hi_y, 2.0);
}

TEST(MbrTest, ContainsPoint) {
  const Mbr box{0, 0, 2, 2};
  EXPECT_TRUE(box.Contains(Point{1, 1}));
  EXPECT_TRUE(box.Contains(Point{0, 0}));  // boundary inclusive
  EXPECT_TRUE(box.Contains(Point{2, 2}));
  EXPECT_FALSE(box.Contains(Point{2.01, 1}));
}

TEST(MbrTest, ContainsMbr) {
  const Mbr outer{0, 0, 4, 4};
  EXPECT_TRUE(outer.Contains(Mbr{1, 1, 2, 2}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Mbr{3, 3, 5, 5}));
  EXPECT_TRUE(outer.Contains(Mbr::Empty()));
  EXPECT_FALSE(Mbr::Empty().Contains(outer));
}

TEST(MbrTest, Intersects) {
  const Mbr a{0, 0, 2, 2};
  EXPECT_TRUE(a.Intersects(Mbr{1, 1, 3, 3}));
  EXPECT_TRUE(a.Intersects(Mbr{2, 2, 3, 3}));  // corner touch
  EXPECT_FALSE(a.Intersects(Mbr{2.1, 0, 3, 2}));
  EXPECT_FALSE(a.Intersects(Mbr::Empty()));
}

TEST(MbrTest, ExtendGrowsToCover) {
  Mbr box = Mbr::FromPoint({1, 1});
  box.Extend(Point{3, 0});
  EXPECT_TRUE(box.Contains(Point{2, 0.5}));
  EXPECT_DOUBLE_EQ(box.Area(), 2.0);
}

TEST(MbrTest, EnlargementZeroWhenContained) {
  const Mbr box{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(box.Enlargement(Mbr{1, 1, 2, 2}), 0.0);
  EXPECT_GT(box.Enlargement(Mbr{4, 4, 5, 5}), 0.0);
}

TEST(MbrTest, MarginIsHalfPerimeter) {
  EXPECT_DOUBLE_EQ((Mbr{0, 0, 2, 3}).Margin(), 5.0);
}

TEST(MbrTest, MinDistZeroInside) {
  const Mbr box{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(box.MinDist(Point{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(box.MinDist(Point{2, 2}), 0.0);
}

TEST(MbrTest, MinDistOutside) {
  const Mbr box{0, 0, 2, 2};
  // Straight out along x.
  EXPECT_DOUBLE_EQ(box.MinDist(Point{4, 1}), 2.0);
  // Diagonal from the corner.
  EXPECT_DOUBLE_EQ(box.MinDist(Point{5, 6}), 5.0);
}

TEST(MbrTest, MaxDistIsFarthestCorner) {
  const Mbr box{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(box.MaxDist(Point{0, 0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(box.MaxDist(Point{1, 1}), std::sqrt(2.0));
}

TEST(MbrTest, MinDistNeverExceedsMaxDist) {
  const Mbr box{0.2, 0.3, 0.8, 0.9};
  for (double x = -1.0; x <= 2.0; x += 0.37) {
    for (double y = -1.0; y <= 2.0; y += 0.41) {
      const Point p{x, y};
      EXPECT_LE(box.MinDist(p), box.MaxDist(p) + 1e-12);
    }
  }
}

TEST(MbrTest, Center) {
  const Point c = (Mbr{0, 0, 2, 4}).Center();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 2.0);
}

// ---------------------------------------------------------------- Segment

TEST(SegmentTest, Length) {
  EXPECT_DOUBLE_EQ((Segment{{0, 0}, {3, 4}}).Length(), 5.0);
}

TEST(SegmentTest, AtOffsetClamped) {
  const Segment seg{{0, 0}, {2, 0}};
  EXPECT_EQ(seg.AtOffset(-1.0), (Point{0, 0}));
  EXPECT_EQ(seg.AtOffset(1.0), (Point{1, 0}));
  EXPECT_EQ(seg.AtOffset(99.0), (Point{2, 0}));
}

TEST(SegmentTest, DegenerateSegment) {
  const Segment seg{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(seg.Length(), 0.0);
  EXPECT_EQ(seg.AtOffset(0.5), (Point{1, 1}));
  EXPECT_DOUBLE_EQ(seg.ClosestOffset({5, 5}), 0.0);
}

TEST(SegmentTest, ClosestOffsetProjection) {
  const Segment seg{{0, 0}, {4, 0}};
  EXPECT_DOUBLE_EQ(seg.ClosestOffset({1, 7}), 1.0);
  EXPECT_DOUBLE_EQ(seg.ClosestOffset({-3, 2}), 0.0);  // clamped to a
  EXPECT_DOUBLE_EQ(seg.ClosestOffset({9, 2}), 4.0);   // clamped to b
}

TEST(SegmentTest, DistanceTo) {
  const Segment seg{{0, 0}, {4, 0}};
  EXPECT_DOUBLE_EQ(seg.DistanceTo({2, 3}), 3.0);
  EXPECT_DOUBLE_EQ(seg.DistanceTo({7, 4}), 5.0);  // beyond endpoint b
  EXPECT_DOUBLE_EQ(seg.DistanceTo({2, 0}), 0.0);  // on the segment
}

}  // namespace
}  // namespace msq
