// Parameterized stress suite for the A* engine: exactness against
// Dijkstra and plb invariants across network shapes, plus randomized probe
// interleavings (the access pattern LBC generates).
#include <queue>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/network_gen.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

struct ShapeParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t edges;
  double curvature;
  double junction_ratio;
};

void PrintTo(const ShapeParam& p, std::ostream* os) {
  *os << "seed" << p.seed << "_n" << p.nodes << "_m" << p.edges << "_c"
      << p.curvature << "_j" << p.junction_ratio;
}

class AStarStressTest : public ::testing::TestWithParam<ShapeParam> {
 protected:
  AStarStressTest()
      : network_(GenerateNetwork({.node_count = GetParam().nodes,
                                  .edge_count = GetParam().edges,
                                  .seed = GetParam().seed,
                                  .curvature = GetParam().curvature,
                                  .junction_edge_ratio =
                                      GetParam().junction_ratio})),
        buffer_(&disk_, 1024),
        pager_(&network_, &buffer_) {}

  Location RandomLocation(Rng& rng) const {
    const EdgeId edge =
        static_cast<EdgeId>(rng.NextBounded(network_.edge_count()));
    return Location{edge,
                    rng.NextDouble() * network_.EdgeAt(edge).length};
  }

  RoadNetwork network_;
  InMemoryDiskManager disk_;
  BufferManager buffer_;
  GraphPager pager_;
};

TEST_P(AStarStressTest, ExactAgainstDijkstraManyTargets) {
  Rng rng(GetParam().seed * 77 + 1);
  const Location source = RandomLocation(rng);
  DijkstraSearch oracle(&pager_, source);
  AStarSearch astar(&pager_, source);
  for (int i = 0; i < 25; ++i) {
    const Location target = RandomLocation(rng);
    EXPECT_NEAR(astar.DistanceTo(target), oracle.DistanceTo(target), 1e-9);
  }
}

TEST_P(AStarStressTest, RandomProbeInterleavingStaysExact) {
  Rng rng(GetParam().seed * 131 + 5);
  const Location source = RandomLocation(rng);
  DijkstraSearch oracle(&pager_, source);
  AStarSearch astar(&pager_, source);

  // A rolling set of live probes advanced in random order.
  struct Live {
    Location target;
    AStarSearch::Probe probe;
  };
  std::vector<Live> live;
  int created = 0;
  Dist last_plb_check = 0.0;
  (void)last_plb_check;
  while (created < 20 || !live.empty()) {
    const bool spawn = created < 20 && (live.empty() || rng.NextBounded(3) == 0);
    if (spawn) {
      const Location target = RandomLocation(rng);
      live.push_back(Live{target, astar.NewProbe(target)});
      ++created;
      continue;
    }
    const std::size_t pick = rng.NextBounded(live.size());
    Live& l = live[pick];
    const Dist before = l.probe.plb();
    const Dist plb = l.probe.Advance();
    EXPECT_GE(plb + 1e-9, before) << "plb decreased";
    if (l.probe.done()) {
      EXPECT_NEAR(l.probe.distance(), oracle.DistanceTo(l.target), 1e-9);
      live[pick] = std::move(live.back());
      live.pop_back();
    }
  }
}

TEST_P(AStarStressTest, PlbNeverExceedsTrueDistance) {
  Rng rng(GetParam().seed * 211 + 9);
  const Location source = RandomLocation(rng);
  DijkstraSearch oracle(&pager_, source);
  AStarSearch astar(&pager_, source);
  for (int i = 0; i < 8; ++i) {
    const Location target = RandomLocation(rng);
    const Dist truth = oracle.DistanceTo(target);
    auto probe = astar.NewProbe(target);
    while (!probe.done()) {
      EXPECT_LE(probe.Advance(), truth + 1e-9);
    }
    EXPECT_NEAR(probe.distance(), truth, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AStarStressTest,
    ::testing::Values(ShapeParam{1, 200, 199, 0.0, 0.0},   // tree
                      ShapeParam{2, 300, 390, 0.0, 0.0},   // sparse
                      ShapeParam{3, 300, 390, 1.0, 0.0},   // curved
                      ShapeParam{4, 400, 900, 0.0, 0.0},   // dense
                      ShapeParam{5, 500, 600, 0.3, 1.8},   // polyline
                      ShapeParam{6, 250, 330, 0.6, 1.4}));

}  // namespace
}  // namespace msq
