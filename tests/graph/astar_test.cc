#include "graph/astar.h"

#include <queue>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

struct PagedFixture {
  explicit PagedFixture(RoadNetwork n)
      : network(std::move(n)), buffer(&disk, 512),
        pager(&network, &buffer) {}
  RoadNetwork network;
  InMemoryDiskManager disk;
  BufferManager buffer;
  GraphPager pager;
};

TEST(AStarTest, MatchesDijkstraOnRandomNetwork) {
  PagedFixture f(GenerateNetwork({.node_count = 500,
                                  .edge_count = 750,
                                  .seed = 31}));
  const Location source{3, f.network.EdgeAt(3).length * 0.4};
  DijkstraSearch dijkstra(&f.pager, source);
  AStarSearch astar(&f.pager, source);

  for (EdgeId e = 0; e < f.network.edge_count(); e += 37) {
    const Location target{e, f.network.EdgeAt(e).length * 0.6};
    EXPECT_NEAR(astar.DistanceTo(target), dijkstra.DistanceTo(target), 1e-9)
        << "edge " << e;
  }
}

TEST(AStarTest, SettlesFewerNodesThanDijkstra) {
  PagedFixture f(GenerateNetwork({.node_count = 3000,
                                  .edge_count = 4200,
                                  .seed = 5}));
  const Location source{0, 0.0};
  // A target roughly across the network.
  const Location target{
      static_cast<EdgeId>(f.network.edge_count() - 1), 0.0};

  AStarSearch astar(&f.pager, source);
  astar.DistanceTo(target);
  DijkstraSearch dijkstra(&f.pager, source);
  dijkstra.DistanceTo(target);

  // The directional heuristic must not expand more than plain Dijkstra.
  EXPECT_LE(astar.settled_count(), dijkstra.settled_count());
}

TEST(AStarTest, SameEdgeDirect) {
  PagedFixture f(testing::MakeLineNetwork(4));
  const Dist len = f.network.EdgeAt(1).length;
  AStarSearch astar(&f.pager, Location{1, len * 0.1});
  EXPECT_NEAR(astar.DistanceTo(Location{1, len * 0.8}), len * 0.7, 1e-12);
}

TEST(AStarTest, UnreachableTargetInfinite) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({1, 0});
  network.AddNode({0, 1});
  network.AddNode({1, 1});
  network.AddEdge(0, 1);
  network.AddEdge(2, 3);
  network.Finalize();
  PagedFixture f(std::move(network));
  AStarSearch astar(&f.pager, Location{0, 0.0});
  auto probe = astar.NewProbe(Location{1, 0.0});
  EXPECT_EQ(probe.Run(), kInfDist);
  EXPECT_TRUE(probe.done());
  EXPECT_EQ(probe.plb(), kInfDist);
}

TEST(AStarTest, PlbStartsAtEuclideanDistance) {
  PagedFixture f(testing::MakeGridNetwork(6));
  const Location source{0, 0.0};
  const EdgeId last_edge = static_cast<EdgeId>(f.network.edge_count() - 1);
  const Location target{last_edge, f.network.EdgeAt(last_edge).length};
  AStarSearch astar(&f.pager, source);
  auto probe = astar.NewProbe(target);
  const Dist euclid =
      EuclideanDistance(f.network.LocationPosition(source),
                        f.network.LocationPosition(target));
  EXPECT_NEAR(probe.plb(), euclid, 1e-12);
}

TEST(AStarTest, PlbMonotoneNonDecreasingAndBelowDistance) {
  PagedFixture f(GenerateNetwork({.node_count = 800,
                                  .edge_count = 1100,
                                  .seed = 77}));
  const Location source{0, 0.0};
  const Location target{static_cast<EdgeId>(f.network.edge_count() / 2),
                        0.0};
  AStarSearch oracle(&f.pager, source);
  const Dist true_dist = oracle.DistanceTo(target);

  AStarSearch astar(&f.pager, source);
  auto probe = astar.NewProbe(target);
  Dist last = probe.plb();
  while (!probe.done()) {
    const Dist plb = probe.Advance();
    EXPECT_GE(plb + 1e-9, last);
    EXPECT_LE(plb, true_dist + 1e-9);
    last = plb;
  }
  EXPECT_NEAR(probe.distance(), true_dist, 1e-9);
  EXPECT_NEAR(probe.plb(), true_dist, 1e-9);
}

TEST(AStarTest, LabelReuseAcrossTargets) {
  PagedFixture f(testing::MakeGridNetwork(10));
  AStarSearch astar(&f.pager, Location{0, 0.0});
  astar.DistanceTo(Location{50, 0.0});
  const std::size_t settled_first = astar.settled_count();
  // A second target in the already-expanded region costs nothing new.
  astar.DistanceTo(Location{0, 0.0});
  EXPECT_EQ(astar.settled_count(), settled_first);
}

TEST(AStarTest, InterleavedProbesShareLabelsAndStayExact) {
  PagedFixture f(GenerateNetwork({.node_count = 600,
                                  .edge_count = 900,
                                  .seed = 41}));
  const Location source{0, 0.0};
  DijkstraSearch oracle(&f.pager, source);

  AStarSearch astar(&f.pager, source);
  const Location t1{100, 0.0};
  const Location t2{400, 0.0};
  const Location t3{700, 0.0};
  auto p1 = astar.NewProbe(t1);
  auto p2 = astar.NewProbe(t2);
  auto p3 = astar.NewProbe(t3);

  // Round-robin single steps until all done — the LBC access pattern.
  while (!p1.done() || !p2.done() || !p3.done()) {
    p1.Advance();
    p2.Advance();
    p3.Advance();
  }
  EXPECT_NEAR(p1.distance(), oracle.DistanceTo(t1), 1e-9);
  EXPECT_NEAR(p2.distance(), oracle.DistanceTo(t2), 1e-9);
  EXPECT_NEAR(p3.distance(), oracle.DistanceTo(t3), 1e-9);
}

TEST(AStarTest, ProbeAfterCompletedProbeUsesSettledRegion) {
  PagedFixture f(testing::MakeGridNetwork(12));
  AStarSearch astar(&f.pager, Location{0, 0.0});
  astar.DistanceTo(Location{30, 0.0});
  const std::size_t settled = astar.settled_count();

  // New probe toward a target within the settled region: done without any
  // extra expansion.
  auto probe = astar.NewProbe(Location{0, 0.0});
  probe.Run();
  EXPECT_EQ(astar.settled_count(), settled);
}

TEST(AStarTest, AdvanceIdempotentWhenDone) {
  PagedFixture f(testing::MakeLineNetwork(3));
  AStarSearch astar(&f.pager, Location{0, 0.0});
  auto probe = astar.NewProbe(Location{1, 0.0});
  const Dist d = probe.Run();
  const Dist plb_done = probe.plb();
  EXPECT_EQ(probe.Advance(), plb_done);
  EXPECT_EQ(probe.distance(), d);
}

TEST(AStarTest, ManyTargetsMatchReference) {
  PagedFixture f(GenerateNetwork({.node_count = 400,
                                  .edge_count = 520,
                                  .seed = 53}));
  const Location source{7, 0.0};
  DijkstraSearch oracle(&f.pager, source);
  AStarSearch astar(&f.pager, source);
  for (EdgeId e = 0; e < f.network.edge_count(); e += 11) {
    const Location target{e, f.network.EdgeAt(e).length * 0.5};
    EXPECT_NEAR(astar.DistanceTo(target), oracle.DistanceTo(target), 1e-9);
  }
}

}  // namespace
}  // namespace msq
