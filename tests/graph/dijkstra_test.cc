#include "graph/dijkstra.h"

#include <queue>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

// Reference all-distances Dijkstra from a location, on the in-memory
// adjacency (independent of the paged code under test).
std::vector<Dist> ReferenceDistances(const RoadNetwork& network,
                                     const Location& source) {
  std::vector<Dist> dist(network.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  const auto& e = network.EdgeAt(source.edge);
  const auto [du, dv] = network.EndpointDistances(source);
  dist[e.u] = du;
  dist[e.v] = dv;
  heap.emplace(du, e.u);
  heap.emplace(dv, e.v);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    for (const AdjacencyEntry& adj : network.Adjacent(node)) {
      const Dist nd = d + adj.length;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

struct PagedFixture {
  explicit PagedFixture(RoadNetwork n)
      : network(std::move(n)), buffer(&disk, 512),
        pager(&network, &buffer) {}
  RoadNetwork network;
  InMemoryDiskManager disk;
  BufferManager buffer;
  GraphPager pager;
};

TEST(DijkstraTest, LineNetworkDistances) {
  PagedFixture f(testing::MakeLineNetwork(5));
  // Source at the middle of edge 0 (between nodes 0 and 1).
  const Dist len = f.network.EdgeAt(0).length;
  DijkstraSearch search(&f.pager, Location{0, len / 2});
  EXPECT_DOUBLE_EQ(search.DistanceTo(Location{3, 0.0}), len / 2 + 2 * len);
}

TEST(DijkstraTest, SettlesInAscendingOrder) {
  PagedFixture f(testing::MakeGridNetwork(6));
  DijkstraSearch search(&f.pager, Location{0, 0.0});
  Dist last = 0.0;
  std::size_t count = 0;
  while (const auto settled = search.NextSettled()) {
    EXPECT_GE(settled->distance + 1e-12, last);
    last = settled->distance;
    ++count;
  }
  EXPECT_EQ(count, f.network.node_count());
}

TEST(DijkstraTest, MatchesReferenceOnRandomNetwork) {
  PagedFixture f(GenerateNetwork({.node_count = 400,
                                  .edge_count = 600,
                                  .seed = 17}));
  const Location source{5, f.network.EdgeAt(5).length * 0.3};
  const auto expected = ReferenceDistances(f.network, source);

  DijkstraSearch search(&f.pager, source);
  while (search.NextSettled().has_value()) {
  }
  for (NodeId node = 0; node < f.network.node_count(); ++node) {
    EXPECT_NEAR(search.Label(node), expected[node], 1e-9) << "node " << node;
    EXPECT_TRUE(search.IsSettled(node));
  }
}

TEST(DijkstraTest, RadiusIsLowerBoundOnUnsettled) {
  PagedFixture f(testing::MakeGridNetwork(5));
  DijkstraSearch search(&f.pager, Location{0, 0.0});
  for (int i = 0; i < 10; ++i) {
    const Dist radius = search.Radius();
    const auto settled = search.NextSettled();
    ASSERT_TRUE(settled.has_value());
    EXPECT_DOUBLE_EQ(settled->distance, radius);
  }
}

TEST(DijkstraTest, SameEdgeDirectDistance) {
  PagedFixture f(testing::MakeLineNetwork(3));
  const Dist len = f.network.EdgeAt(0).length;
  DijkstraSearch search(&f.pager, Location{0, len * 0.2});
  EXPECT_NEAR(search.DistanceTo(Location{0, len * 0.9}), len * 0.7, 1e-12);
}

TEST(DijkstraTest, SameEdgeMayBeBeatenByDetour) {
  // Triangle where the direct edge is long but a two-hop path is shorter:
  // u--v direct length 10 (curved road), u--w--v total 2.4.
  RoadNetwork network;
  const NodeId u = network.AddNode({0, 0});
  const NodeId v = network.AddNode({1, 0});
  const NodeId w = network.AddNode({0.5, 0.1});
  const EdgeId direct = network.AddEdge(u, v, 10.0);
  network.AddEdge(u, w, 1.2);
  network.AddEdge(w, v, 1.2);
  network.Finalize();
  PagedFixture f(std::move(network));

  // From one end of the long edge to the other: going around is shorter
  // than walking the curved edge end-to-end.
  DijkstraSearch search(&f.pager, Location{direct, 0.0});
  EXPECT_NEAR(search.DistanceTo(Location{direct, 10.0}), 2.4, 1e-12);
}

TEST(DijkstraTest, UnreachableTargetIsInfinite) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({1, 0});
  network.AddNode({0, 1});
  network.AddNode({1, 1});
  network.AddEdge(0, 1);
  network.AddEdge(2, 3);
  network.Finalize();
  PagedFixture f(std::move(network));

  DijkstraSearch search(&f.pager, Location{0, 0.0});
  EXPECT_EQ(search.DistanceTo(Location{1, 0.0}), kInfDist);
}

TEST(DijkstraTest, ResumableAcrossDistanceCalls) {
  PagedFixture f(testing::MakeGridNetwork(8));
  DijkstraSearch search(&f.pager, Location{0, 0.0});
  const Dist d1 = search.DistanceTo(Location{3, 0.0});
  const std::size_t settled_after_first = search.settled_count();
  // Second, nearer target must not grow the settled set.
  const Dist d2 = search.DistanceTo(Location{0, 0.0});
  EXPECT_EQ(search.settled_count(), settled_after_first);
  EXPECT_LE(d2, d1);
}

TEST(DijkstraTest, SettledCountTracksExpansion) {
  PagedFixture f(testing::MakeGridNetwork(4));
  DijkstraSearch search(&f.pager, Location{0, 0.0});
  EXPECT_EQ(search.settled_count(), 0u);
  search.NextSettled();
  search.NextSettled();
  EXPECT_EQ(search.settled_count(), 2u);
}

TEST(DijkstraTest, MultipleTargetsOneTraversal) {
  PagedFixture f(GenerateNetwork({.node_count = 300,
                                  .edge_count = 450,
                                  .seed = 23}));
  const Location source{0, 0.0};
  const auto expected = ReferenceDistances(f.network, source);
  DijkstraSearch search(&f.pager, source);
  // Query several targets in arbitrary order; each must be exact.
  for (const EdgeId e : {EdgeId{10}, EdgeId{200}, EdgeId{40}, EdgeId{399}}) {
    const auto& edge = f.network.EdgeAt(e);
    const Dist got = search.DistanceTo(Location{e, 0.0});
    EXPECT_NEAR(got, expected[edge.u], 1e-9);
  }
}

// A search resumed from a mid-expansion checkpoint must settle the exact
// same remaining sequence — same nodes, same order, bitwise-equal
// distances — as the cold search it was taken from. Distance ties are the
// hazard: the (dist, id) heap tie-break must make settle order independent
// of insertion history, which a checkpoint reshuffles.
TEST(DijkstraTest, CheckpointResumeReplaysSettleSequence) {
  // Grid networks maximize equal-distance plateaus.
  PagedFixture f(testing::MakeGridNetwork(8));
  const Location source{0, 0.0};

  std::vector<DijkstraSearch::Settled> cold;
  {
    DijkstraSearch search(&f.pager, source);
    while (const auto settled = search.NextSettled()) {
      cold.push_back(*settled);
    }
  }
  ASSERT_EQ(cold.size(), f.network.node_count());

  for (const std::size_t consume : {std::size_t{0}, cold.size() / 3,
                                    cold.size() - 1, cold.size()}) {
    DijkstraSearch warmup(&f.pager, source);
    for (std::size_t i = 0; i < consume; ++i) warmup.NextSettled();
    const DijkstraSearch::Checkpoint checkpoint = warmup.MakeCheckpoint();
    EXPECT_EQ(checkpoint.settled_count, consume);
    EXPECT_GT(checkpoint.bytes(), 0u);

    DijkstraSearch resumed(&f.pager, source, checkpoint);
    EXPECT_EQ(resumed.settled_count(), consume);
    std::size_t at = consume;
    while (const auto settled = resumed.NextSettled()) {
      ASSERT_LT(at, cold.size());
      EXPECT_EQ(settled->node, cold[at].node) << "position " << at;
      EXPECT_EQ(settled->distance, cold[at].distance) << "position " << at;
      ++at;
    }
    EXPECT_EQ(at, cold.size()) << "consumed " << consume;
  }
}

// Labels of already-settled nodes survive a checkpoint round trip, so
// DistanceTo on a resumed search answers from the copied labels.
TEST(DijkstraTest, CheckpointPreservesLabels) {
  PagedFixture f(GenerateNetwork({.node_count = 200,
                                  .edge_count = 300,
                                  .seed = 41}));
  const Location source{2, 0.0};
  DijkstraSearch search(&f.pager, source);
  while (search.NextSettled()) {
  }
  const DijkstraSearch::Checkpoint checkpoint = search.MakeCheckpoint();

  DijkstraSearch resumed(&f.pager, source, checkpoint);
  for (NodeId node = 0; node < f.network.node_count(); ++node) {
    EXPECT_EQ(resumed.IsSettled(node), search.IsSettled(node));
    EXPECT_EQ(resumed.Label(node), search.Label(node));
  }
}

}  // namespace
}  // namespace msq
