#include "graph/graph_pager.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(GraphPagerTest, AdjacencyMatchesInMemory) {
  RoadNetwork network = testing::MakeGridNetwork(5);
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 64);
  GraphPager pager(&network, &buffer);

  std::vector<AdjacencyEntry> got;
  for (NodeId node = 0; node < network.node_count(); ++node) {
    pager.AdjacencyOf(node, &got);
    const auto want = network.Adjacent(node);
    ASSERT_EQ(got.size(), want.size()) << "node " << node;
    // Compare as multisets of (neighbor, edge).
    auto key = [](const AdjacencyEntry& e) {
      return (static_cast<std::uint64_t>(e.neighbor) << 32) | e.edge;
    };
    std::vector<std::uint64_t> got_keys, want_keys;
    for (const auto& e : got) got_keys.push_back(key(e));
    for (const auto& e : want) want_keys.push_back(key(e));
    std::sort(got_keys.begin(), got_keys.end());
    std::sort(want_keys.begin(), want_keys.end());
    EXPECT_EQ(got_keys, want_keys);
  }
}

TEST(GraphPagerTest, LengthsPreserved) {
  RoadNetwork network = testing::MakeLineNetwork(10);
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 16);
  GraphPager pager(&network, &buffer);
  std::vector<AdjacencyEntry> adj;
  pager.AdjacencyOf(5, &adj);
  for (const auto& e : adj) {
    EXPECT_DOUBLE_EQ(e.length, network.EdgeAt(e.edge).length);
  }
}

TEST(GraphPagerTest, AccessesAreCountedAsPages) {
  RoadNetwork network = GenerateNetwork({.node_count = 2000,
                                         .edge_count = 2600,
                                         .seed = 3});
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 256);
  GraphPager pager(&network, &buffer);
  EXPECT_GT(pager.page_count(), 1u);

  buffer.Clear();
  buffer.ResetStats();
  std::vector<AdjacencyEntry> adj;
  for (NodeId node = 0; node < network.node_count(); ++node) {
    pager.AdjacencyOf(node, &adj);
  }
  // Every page fetched at least once; hits dominate because records share
  // pages.
  EXPECT_GE(buffer.stats().misses, pager.page_count());
  EXPECT_GT(buffer.stats().hits, 0u);
}

TEST(GraphPagerTest, SpatialClusteringGivesLocality) {
  // A wavefront touching spatially adjacent nodes should hit mostly the
  // same pages: fetching the adjacency of a node and its neighbors must
  // cost far fewer misses than nodes scattered across the network.
  RoadNetwork network = GenerateNetwork({.node_count = 5000,
                                         .edge_count = 6500,
                                         .seed = 11});
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4096);
  GraphPager pager(&network, &buffer);

  buffer.Clear();
  buffer.ResetStats();
  std::vector<AdjacencyEntry> adj;
  // Breadth-1 neighborhood of node 0.
  pager.AdjacencyOf(0, &adj);
  std::vector<NodeId> frontier;
  for (const auto& e : adj) frontier.push_back(e.neighbor);
  for (const NodeId v : frontier) pager.AdjacencyOf(v, &adj);
  const std::uint64_t local_misses = buffer.stats().misses;

  // The same number of scattered nodes.
  buffer.Clear();
  buffer.ResetStats();
  const std::size_t stride = network.node_count() / (frontier.size() + 1);
  pager.AdjacencyOf(0, &adj);
  for (std::size_t i = 1; i <= frontier.size(); ++i) {
    pager.AdjacencyOf(static_cast<NodeId>(i * stride), &adj);
  }
  const std::uint64_t scattered_misses = buffer.stats().misses;
  EXPECT_LE(local_misses, scattered_misses);
}

TEST(GraphPagerTest, SingleNodeNetwork) {
  RoadNetwork network;
  network.AddNode({0.5, 0.5});
  network.Finalize();
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4);
  GraphPager pager(&network, &buffer);
  std::vector<AdjacencyEntry> adj;
  pager.AdjacencyOf(0, &adj);
  EXPECT_TRUE(adj.empty());
}

TEST(GraphPagerCsrTest, DecodesIdenticallyToRowFormat) {
  const RoadNetwork network = GenerateNetwork({.node_count = 1500,
                                               .edge_count = 2000,
                                               .seed = 7,
                                               .curvature = 0.8});
  InMemoryDiskManager row_disk, csr_disk;
  BufferManager row_buffer(&row_disk, 256), csr_buffer(&csr_disk, 256);
  GraphPager row(&network, &row_buffer);
  GraphPager csr(&network, &csr_buffer,
                 {NodeOrdering::kAsIs, AdjacencyFormat::kCsr});

  std::vector<AdjacencyEntry> row_adj, csr_adj;
  for (NodeId node = 0; node < network.node_count(); ++node) {
    ASSERT_TRUE(row.AdjacencyOf(node, &row_adj).ok());
    ASSERT_TRUE(csr.AdjacencyOf(node, &csr_adj).ok());
    ASSERT_EQ(row_adj.size(), csr_adj.size()) << "node " << node;
    for (std::size_t i = 0; i < row_adj.size(); ++i) {
      EXPECT_EQ(csr_adj[i].neighbor, row_adj[i].neighbor);
      EXPECT_EQ(csr_adj[i].edge, row_adj[i].edge);
      // Bit-exact, including recomputed Euclidean lengths.
      EXPECT_EQ(csr_adj[i].length, row_adj[i].length);
    }
  }
}

TEST(GraphPagerCsrTest, CompressesStraightEdgeNetworks) {
  // curvature = 0 ⇒ every length bit-equals the Euclidean distance and is
  // elided; CSR should cut the page count by well over half.
  const RoadNetwork network = GenerateNetwork({.node_count = 4000,
                                               .edge_count = 5200,
                                               .seed = 8});
  InMemoryDiskManager row_disk, csr_disk;
  BufferManager row_buffer(&row_disk, 256), csr_buffer(&csr_disk, 256);
  GraphPager row(&network, &row_buffer);
  const RoadNetwork hilbert = RelabelNodes(network, HilbertNodeOrder(network));
  GraphPager csr(&hilbert, &csr_buffer,
                 {NodeOrdering::kAsIs, AdjacencyFormat::kCsr});
  EXPECT_LT(csr.page_count() * 2, row.page_count())
      << "csr=" << csr.page_count() << " row=" << row.page_count();
}

TEST(GraphPagerCsrTest, RejectsCorruptPages) {
  const RoadNetwork network = GenerateNetwork({.node_count = 800,
                                               .edge_count = 1000,
                                               .seed = 9});
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 64);
  GraphPager csr(&network, &buffer,
                 {NodeOrdering::kAsIs, AdjacencyFormat::kCsr});
  // Smash the header of page 0 behind the buffer pool's back.
  buffer.Clear();
  Page page;
  ASSERT_TRUE(disk.Read(0, &page).ok());
  page.data[0] = static_cast<std::byte>(0xff);
  ASSERT_TRUE(disk.Write(0, page).ok());
  std::vector<AdjacencyEntry> adj;
  std::size_t corrupt = 0;
  for (NodeId node = 0; node < network.node_count(); ++node) {
    const Status s = csr.AdjacencyOf(node, &adj);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
      EXPECT_TRUE(adj.empty());
      ++corrupt;
    }
  }
  EXPECT_GT(corrupt, 0u);
}

TEST(GraphPagerTest, LayoutEpochsAreUnique) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  InMemoryDiskManager disk_a, disk_b;
  BufferManager buffer_a(&disk_a, 16), buffer_b(&disk_b, 16);
  GraphPager a(&network, &buffer_a);
  GraphPager b(&network, &buffer_b);
  EXPECT_NE(a.layout_epoch(), b.layout_epoch());
  EXPECT_NE(a.layout_epoch(), 0u);
}

}  // namespace
}  // namespace msq
