#include "graph/landmarks.h"

#include <cmath>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "core/lbc.h"
#include "core/naive.h"
#include "gen/network_gen.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

std::vector<Dist> NodeDistances(const RoadNetwork& network, NodeId from) {
  std::vector<Dist> dist(network.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    for (const AdjacencyEntry& adj : network.Adjacent(node)) {
      const Dist nd = d + adj.length;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

TEST(LandmarkIndexTest, DistancesAreExact) {
  const RoadNetwork network = GenerateNetwork({.node_count = 300,
                                               .edge_count = 420,
                                               .seed = 5});
  const LandmarkIndex index(&network, 4);
  ASSERT_EQ(index.landmark_count(), 4u);
  for (std::size_t i = 0; i < index.landmark_count(); ++i) {
    const auto expected = NodeDistances(network, index.landmark(i));
    for (NodeId v = 0; v < network.node_count(); v += 17) {
      EXPECT_NEAR(index.LandmarkDistance(i, v), expected[v], 1e-9);
    }
  }
}

TEST(LandmarkIndexTest, LandmarksAreDistinctAndSpread) {
  const RoadNetwork network = GenerateNetwork({.node_count = 500,
                                               .edge_count = 700,
                                               .seed = 7});
  const LandmarkIndex index(&network, 6);
  std::set<NodeId> distinct;
  for (std::size_t i = 0; i < index.landmark_count(); ++i) {
    distinct.insert(index.landmark(i));
  }
  EXPECT_EQ(distinct.size(), index.landmark_count());
}

TEST(LandmarkIndexTest, LowerBoundNeverExceedsTrueDistance) {
  // Curved network so Euclidean and landmark bounds differ noticeably.
  const RoadNetwork network = GenerateNetwork({.node_count = 300,
                                               .edge_count = 360,
                                               .seed = 11,
                                               .curvature = 0.8});
  const LandmarkIndex index(&network, 5);
  const auto truth = NodeDistances(network, 0);
  const Location target{0, 0.0};  // on an edge incident to... any edge
  const auto& edge0 = network.EdgeAt(0);
  for (NodeId v = 0; v < network.node_count(); v += 7) {
    const Dist true_dist =
        std::min(truth[edge0.u] /* to offset 0 == node u */,
                 truth[edge0.v] + edge0.length);
    (void)true_dist;
    const Dist lb = index.LowerBound(v, target);
    // dN(v, target) computed from v's perspective:
    const auto from_v = NodeDistances(network, v);
    const Dist exact = std::min(from_v[edge0.u], from_v[edge0.v] + edge0.length);
    EXPECT_LE(lb, exact + 1e-9) << "node " << v;
  }
}

TEST(LandmarkIndexTest, LocationLowerBoundValid) {
  const RoadNetwork network = GenerateNetwork({.node_count = 200,
                                               .edge_count = 260,
                                               .seed = 13,
                                               .curvature = 0.5});
  const LandmarkIndex index(&network, 4);

  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 512);
  GraphPager pager(&network, &buffer);
  for (EdgeId e = 0; e < network.edge_count(); e += 23) {
    const Location a{0, 0.0};
    const Location b{e, network.EdgeAt(e).length * 0.5};
    DijkstraSearch oracle(&pager, a);
    const Dist exact = oracle.DistanceTo(b);
    if (!std::isfinite(exact)) continue;
    EXPECT_LE(index.LowerBound(a, b), exact + 1e-9) << "edge " << e;
  }
}

TEST(LandmarkIndexTest, TighterThanEuclideanOnCurvedNetwork) {
  const RoadNetwork network = GenerateNetwork({.node_count = 400,
                                               .edge_count = 480,
                                               .seed = 17,
                                               .curvature = 1.0});
  const LandmarkIndex index(&network, 8);
  std::size_t tighter = 0, total = 0;
  for (EdgeId e = 5; e < network.edge_count(); e += 29) {
    const Location a{0, 0.0};
    const Location b{e, 0.0};
    const Dist euclid = EuclideanDistance(network.LocationPosition(a),
                                          network.LocationPosition(b));
    if (index.LowerBound(a, b) > euclid + 1e-12) ++tighter;
    ++total;
  }
  // With curvature 1.0 the landmark bound should usually beat Euclidean.
  EXPECT_GT(tighter * 2, total);
}

TEST(LandmarkIndexTest, DisconnectedComponentsHandled) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({0.3, 0});
  network.AddNode({0.7, 0});
  network.AddNode({1.0, 0});
  network.AddEdge(0, 1);
  network.AddEdge(2, 3);
  network.Finalize();
  const LandmarkIndex index(&network, 4);
  EXPECT_GE(index.landmark_count(), 1u);
  // Bound between disconnected locations must still be a valid lower
  // bound of infinity — any finite value qualifies; just must not crash.
  EXPECT_GE(index.LowerBound(Location{0, 0.0}, Location{1, 0.0}), 0.0);
}

TEST(LandmarkIndexTest, AStarWithLandmarksExactAndCheaper) {
  const RoadNetwork network = GenerateNetwork({.node_count = 1500,
                                               .edge_count = 1800,
                                               .seed = 19,
                                               .curvature = 0.8});
  const LandmarkIndex index(&network, 8);
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 1024);
  GraphPager pager(&network, &buffer);

  const Location source{0, 0.0};
  std::size_t plain_settled = 0, alt_settled = 0;
  for (EdgeId e = 100; e < network.edge_count(); e += 171) {
    const Location target{e, 0.0};
    AStarSearch plain(&pager, source);
    AStarSearch alt(&pager, source, &index);
    EXPECT_NEAR(alt.DistanceTo(target), plain.DistanceTo(target), 1e-9);
    plain_settled += plain.settled_count();
    alt_settled += alt.settled_count();
  }
  // The tighter heuristic can only reduce expansions (same tie-breaking).
  EXPECT_LE(alt_settled, plain_settled);
}

TEST(LandmarkIndexTest, LbcWithLandmarksMatchesOracle) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{400, 480, 23, 0.8, 0.0};
  config.object_density = 0.5;
  config.landmark_count = 8;
  Workload workload(config);
  ASSERT_NE(workload.landmarks(), nullptr);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto spec = workload.SampleQuery(3, seed);
    const auto expected = RunNaive(workload.dataset(), spec);
    const auto got = RunLbc(workload.dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(expected))
        << "seed " << seed;
  }
}

TEST(LandmarkIndexTest, LandmarksReduceLbcNetworkAccess) {
  // On a high-detour network the ALT bounds terminate plb screening
  // earlier than Euclidean bounds.
  WorkloadConfig with;
  with.network = NetworkGenConfig{800, 960, 29, 1.0, 0.0};
  with.object_density = 0.5;
  with.landmark_count = 8;
  Workload workload_with(with);

  WorkloadConfig without = with;
  without.landmark_count = 0;
  Workload workload_without(without);

  std::size_t settled_with = 0, settled_without = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto spec_w = workload_with.SampleQuery(4, seed);
    const auto spec_wo = workload_without.SampleQuery(4, seed);
    workload_with.ResetBuffers();
    settled_with +=
        RunLbc(workload_with.dataset(), spec_w).stats.settled_nodes;
    workload_without.ResetBuffers();
    settled_without +=
        RunLbc(workload_without.dataset(), spec_wo).stats.settled_nodes;
  }
  EXPECT_LT(settled_with, settled_without);
}

}  // namespace
}  // namespace msq
