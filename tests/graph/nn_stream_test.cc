#include "graph/nn_stream.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

struct StreamFixture {
  StreamFixture(RoadNetwork n, std::vector<Location> objs)
      : network(std::move(n)),
        graph_buffer(&graph_disk, 512),
        index_buffer(&index_disk, 512),
        pager(&network, &graph_buffer),
        mapping(&network, &index_buffer, objs) {}

  RoadNetwork network;
  InMemoryDiskManager graph_disk, index_disk;
  BufferManager graph_buffer, index_buffer;
  GraphPager pager;
  SpatialMapping mapping;
};

TEST(NetworkNnStreamTest, EmitsAllObjectsAscending) {
  RoadNetwork network = GenerateNetwork({.node_count = 300,
                                         .edge_count = 420,
                                         .seed = 61});
  auto objects = GenerateObjects(network, 80, 17);
  StreamFixture f(std::move(network), objects);

  const Location source{0, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  Dist last = 0.0;
  std::vector<bool> seen(objects.size(), false);
  std::size_t count = 0;
  while (const auto visit = stream.Next()) {
    EXPECT_GE(visit->distance + 1e-12, last);
    EXPECT_FALSE(seen[visit->object]) << "duplicate emission";
    seen[visit->object] = true;
    last = visit->distance;
    ++count;
  }
  EXPECT_EQ(count, objects.size());  // generated network is connected
}

TEST(NetworkNnStreamTest, DistancesMatchDijkstraOracle) {
  RoadNetwork network = GenerateNetwork({.node_count = 200,
                                         .edge_count = 300,
                                         .seed = 67});
  auto objects = GenerateObjects(network, 40, 23);
  StreamFixture f(std::move(network), objects);

  const Location source{5, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  DijkstraSearch oracle(&f.pager, source);
  while (const auto visit = stream.Next()) {
    EXPECT_NEAR(visit->distance, oracle.DistanceTo(objects[visit->object]),
                1e-9)
        << "object " << visit->object;
  }
}

TEST(NetworkNnStreamTest, SourceEdgeObjectsDirect) {
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(1).length;
  std::vector<Location> objects = {{1, len * 0.9}, {1, len * 0.1}};
  StreamFixture f(std::move(network), objects);

  NetworkNnStream stream(&f.pager, &f.mapping, Location{1, len * 0.2});
  const auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->object, 1u);
  EXPECT_NEAR(first->distance, len * 0.1, 1e-12);
  const auto second = stream.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->object, 0u);
  EXPECT_NEAR(second->distance, len * 0.7, 1e-12);
}

TEST(NetworkNnStreamTest, UnreachableObjectsNeverEmitted) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({1, 0});
  network.AddNode({0, 1});
  network.AddNode({1, 1});
  const EdgeId reachable = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  std::vector<Location> objects = {{reachable, 0.5}, {island, 0.5}};
  StreamFixture f(std::move(network), objects);

  NetworkNnStream stream(&f.pager, &f.mapping, Location{reachable, 0.0});
  const auto visit = stream.Next();
  ASSERT_TRUE(visit.has_value());
  EXPECT_EQ(visit->object, 0u);
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(NetworkNnStreamTest, CoLocatedObjectsBothEmitted) {
  RoadNetwork network = testing::MakeLineNetwork(3);
  const Dist len = network.EdgeAt(0).length;
  std::vector<Location> objects = {{0, len * 0.5}, {0, len * 0.5}};
  StreamFixture f(std::move(network), objects);
  NetworkNnStream stream(&f.pager, &f.mapping, Location{0, 0.0});
  const auto a = stream.Next();
  const auto b = stream.Next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(a->distance, b->distance, 1e-12);
  EXPECT_NE(a->object, b->object);
}

TEST(NetworkNnStreamTest, NoObjects) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  StreamFixture f(std::move(network), {});
  NetworkNnStream stream(&f.pager, &f.mapping, Location{0, 0.0});
  EXPECT_FALSE(stream.Next().has_value());
}

}  // namespace
}  // namespace msq
