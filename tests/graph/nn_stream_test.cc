#include "graph/nn_stream.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "graph/dijkstra.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

struct StreamFixture {
  StreamFixture(RoadNetwork n, std::vector<Location> objs)
      : network(std::move(n)),
        graph_buffer(&graph_disk, 512),
        index_buffer(&index_disk, 512),
        pager(&network, &graph_buffer),
        mapping(&network, &index_buffer, objs) {}

  RoadNetwork network;
  InMemoryDiskManager graph_disk, index_disk;
  BufferManager graph_buffer, index_buffer;
  GraphPager pager;
  SpatialMapping mapping;
};

TEST(NetworkNnStreamTest, EmitsAllObjectsAscending) {
  RoadNetwork network = GenerateNetwork({.node_count = 300,
                                         .edge_count = 420,
                                         .seed = 61});
  auto objects = GenerateObjects(network, 80, 17);
  StreamFixture f(std::move(network), objects);

  const Location source{0, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  Dist last = 0.0;
  std::vector<bool> seen(objects.size(), false);
  std::size_t count = 0;
  while (const auto visit = stream.Next()) {
    EXPECT_GE(visit->distance + 1e-12, last);
    EXPECT_FALSE(seen[visit->object]) << "duplicate emission";
    seen[visit->object] = true;
    last = visit->distance;
    ++count;
  }
  EXPECT_EQ(count, objects.size());  // generated network is connected
}

TEST(NetworkNnStreamTest, DistancesMatchDijkstraOracle) {
  RoadNetwork network = GenerateNetwork({.node_count = 200,
                                         .edge_count = 300,
                                         .seed = 67});
  auto objects = GenerateObjects(network, 40, 23);
  StreamFixture f(std::move(network), objects);

  const Location source{5, 0.0};
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  DijkstraSearch oracle(&f.pager, source);
  while (const auto visit = stream.Next()) {
    EXPECT_NEAR(visit->distance, oracle.DistanceTo(objects[visit->object]),
                1e-9)
        << "object " << visit->object;
  }
}

TEST(NetworkNnStreamTest, SourceEdgeObjectsDirect) {
  RoadNetwork network = testing::MakeLineNetwork(4);
  const Dist len = network.EdgeAt(1).length;
  std::vector<Location> objects = {{1, len * 0.9}, {1, len * 0.1}};
  StreamFixture f(std::move(network), objects);

  NetworkNnStream stream(&f.pager, &f.mapping, Location{1, len * 0.2});
  const auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->object, 1u);
  EXPECT_NEAR(first->distance, len * 0.1, 1e-12);
  const auto second = stream.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->object, 0u);
  EXPECT_NEAR(second->distance, len * 0.7, 1e-12);
}

TEST(NetworkNnStreamTest, UnreachableObjectsNeverEmitted) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({1, 0});
  network.AddNode({0, 1});
  network.AddNode({1, 1});
  const EdgeId reachable = network.AddEdge(0, 1);
  const EdgeId island = network.AddEdge(2, 3);
  network.Finalize();
  std::vector<Location> objects = {{reachable, 0.5}, {island, 0.5}};
  StreamFixture f(std::move(network), objects);

  NetworkNnStream stream(&f.pager, &f.mapping, Location{reachable, 0.0});
  const auto visit = stream.Next();
  ASSERT_TRUE(visit.has_value());
  EXPECT_EQ(visit->object, 0u);
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(NetworkNnStreamTest, CoLocatedObjectsBothEmitted) {
  RoadNetwork network = testing::MakeLineNetwork(3);
  const Dist len = network.EdgeAt(0).length;
  std::vector<Location> objects = {{0, len * 0.5}, {0, len * 0.5}};
  StreamFixture f(std::move(network), objects);
  NetworkNnStream stream(&f.pager, &f.mapping, Location{0, 0.0});
  const auto a = stream.Next();
  const auto b = stream.Next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(a->distance, b->distance, 1e-12);
  EXPECT_NE(a->object, b->object);
}

TEST(NetworkNnStreamTest, NoObjects) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  StreamFixture f(std::move(network), {});
  NetworkNnStream stream(&f.pager, &f.mapping, Location{0, 0.0});
  EXPECT_FALSE(stream.Next().has_value());
}

// Distance-tie regression: several objects at exactly the same distance
// (co-located pairs plus a symmetric twin across the source) must emit in
// ascending object id, independent of heap insertion history.
TEST(NetworkNnStreamTest, EqualDistanceTiesEmitInAscendingObjectId) {
  RoadNetwork network = testing::MakeLineNetwork(5);
  const Dist len = network.EdgeAt(0).length;
  // Source mid-network; objects 0..3 all at distance len * 0.5, placed so
  // discovery order (left/right, co-located duplicates) differs from id
  // order.
  const Location source{1, len * 0.5};
  std::vector<Location> objects = {
      {2, 0.0},          // right of source, on node 2: distance len * 0.5
      {1, 0.0},          // left of source, on node 1: distance len * 0.5
      {2, 0.0},          // co-located duplicate of object 0
      {0, len * 1.0},    // on node 1 via edge 0's far end: also len * 0.5
      {3, len * 0.25},   // strictly farther: len * 1.25
  };
  StreamFixture f(std::move(network), objects);
  NetworkNnStream stream(&f.pager, &f.mapping, source);
  std::vector<ObjectId> order;
  while (const auto visit = stream.Next()) order.push_back(visit->object);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
  EXPECT_EQ(order[4], 4u);
}

// Zero-length offsets put objects exactly on nodes, so emission distances
// coincide exactly with wavefront radii — the boundary where the strict-<
// emission condition must hold an object back until its distance twins are
// all discovered, on both cold and resumed runs.
TEST(NetworkNnStreamTest, ObjectsOnNodesEmitAtRadiusBoundary) {
  RoadNetwork network = testing::MakeLineNetwork(6);
  const Dist len = network.EdgeAt(0).length;
  std::vector<Location> objects = {
      {0, 0.0}, {1, 0.0}, {2, 0.0}, {3, 0.0}, {4, 0.0},
  };
  StreamFixture f(std::move(network), objects);
  NetworkNnStream stream(&f.pager, &f.mapping, Location{0, 0.0});
  std::vector<std::pair<ObjectId, Dist>> emitted;
  while (const auto visit = stream.Next()) {
    emitted.push_back({visit->object, visit->distance});
  }
  ASSERT_EQ(emitted.size(), 5u);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i].first, static_cast<ObjectId>(i));
    EXPECT_NEAR(emitted[i].second, len * static_cast<double>(i), 1e-12);
  }
}

// A stream resumed from a snapshot must replay the cold emission sequence
// byte for byte — same objects, same order, bitwise-equal distances —
// regardless of where in the stream the snapshot was taken.
TEST(NetworkNnStreamTest, ResumedStreamReplaysColdSequenceExactly) {
  RoadNetwork network = GenerateNetwork({.node_count = 250,
                                         .edge_count = 360,
                                         .seed = 91});
  auto objects = GenerateObjects(network, 60, 29);
  StreamFixture f(std::move(network), objects);
  const Location source{3, 0.0};

  std::vector<std::pair<ObjectId, Dist>> cold;
  {
    NetworkNnStream stream(&f.pager, &f.mapping, source);
    while (const auto visit = stream.Next()) {
      cold.push_back({visit->object, visit->distance});
    }
  }
  ASSERT_FALSE(cold.empty());

  // Snapshot points: untouched, mid-stream, and fully exhausted.
  for (const std::size_t consume : {std::size_t{0}, cold.size() / 2,
                                    cold.size()}) {
    NetworkNnStream warmup(&f.pager, &f.mapping, source);
    for (std::size_t i = 0; i < consume; ++i) warmup.Next();
    const NetworkNnStream::Snapshot snapshot = warmup.MakeSnapshot();
    EXPECT_GT(snapshot.bytes(), 0u);

    NetworkNnStream resumed(&f.pager, &f.mapping, source, &snapshot);
    std::vector<std::pair<ObjectId, Dist>> warm;
    while (const auto visit = resumed.Next()) {
      warm.push_back({visit->object, visit->distance});
    }
    ASSERT_EQ(warm.size(), cold.size()) << "consumed " << consume;
    for (std::size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(warm[i].first, cold[i].first) << "position " << i;
      // Bitwise equality: resumed labels are copies of cold labels.
      EXPECT_EQ(warm[i].second, cold[i].second) << "position " << i;
    }
  }
}

// Resuming from a fully exhausted snapshot must not touch the graph pager
// at all: every emission comes from the snapshot's object distances.
TEST(NetworkNnStreamTest, ExhaustedSnapshotResumeReadsNoPages) {
  RoadNetwork network = GenerateNetwork({.node_count = 150,
                                         .edge_count = 210,
                                         .seed = 97});
  auto objects = GenerateObjects(network, 30, 31);
  StreamFixture f(std::move(network), objects);
  const Location source{2, 0.0};

  NetworkNnStream warmup(&f.pager, &f.mapping, source);
  std::size_t cold_count = 0;
  while (warmup.Next()) ++cold_count;
  const NetworkNnStream::Snapshot snapshot = warmup.MakeSnapshot();

  const std::uint64_t accesses_before = f.graph_buffer.stats().accesses();
  NetworkNnStream resumed(&f.pager, &f.mapping, source, &snapshot);
  std::size_t warm_count = 0;
  while (resumed.Next()) ++warm_count;
  EXPECT_EQ(warm_count, cold_count);
  // The only expansion allowed is the final frontier-exhaustion check,
  // which pops nothing new when the snapshot was exhausted; no adjacency
  // page reads should occur.
  EXPECT_EQ(f.graph_buffer.stats().accesses(), accesses_before);
}

}  // namespace
}  // namespace msq
