#include "graph/road_network.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "testing_support.h"

namespace msq {
namespace {

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork network;
  const NodeId a = network.AddNode({0, 0});
  const NodeId b = network.AddNode({1, 0});
  const EdgeId e = network.AddEdge(a, b);
  EXPECT_EQ(network.node_count(), 2u);
  EXPECT_EQ(network.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(network.EdgeAt(e).length, 1.0);
}

TEST(RoadNetworkTest, SelfLoopRejected) {
  RoadNetwork network;
  const NodeId a = network.AddNode({0, 0});
  EXPECT_EQ(network.AddEdge(a, a), kInvalidEdge);
  EXPECT_EQ(network.edge_count(), 0u);
}

TEST(RoadNetworkTest, ShortLengthClampedToEuclidean) {
  RoadNetwork network;
  const NodeId a = network.AddNode({0, 0});
  const NodeId b = network.AddNode({3, 4});
  const EdgeId e = network.AddEdge(a, b, 1.0);  // shorter than dE = 5
  EXPECT_DOUBLE_EQ(network.EdgeAt(e).length, 5.0);
  EXPECT_EQ(network.clamped_edge_count(), 1u);
}

TEST(RoadNetworkTest, LongerLengthKept) {
  RoadNetwork network;
  const NodeId a = network.AddNode({0, 0});
  const NodeId b = network.AddNode({3, 4});
  const EdgeId e = network.AddEdge(a, b, 7.5);  // curved road
  EXPECT_DOUBLE_EQ(network.EdgeAt(e).length, 7.5);
  EXPECT_EQ(network.clamped_edge_count(), 0u);
}

TEST(RoadNetworkTest, AdjacencyBothDirections) {
  RoadNetwork network = testing::MakeLineNetwork(3);
  // Middle node sees both neighbors.
  const auto adj = network.Adjacent(1);
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_TRUE((adj[0].neighbor == 0 && adj[1].neighbor == 2) ||
              (adj[0].neighbor == 2 && adj[1].neighbor == 0));
  // Endpoints see one.
  EXPECT_EQ(network.Adjacent(0).size(), 1u);
  EXPECT_EQ(network.Adjacent(2).size(), 1u);
}

TEST(RoadNetworkTest, GridDegrees) {
  RoadNetwork network = testing::MakeGridNetwork(4);
  EXPECT_EQ(network.node_count(), 16u);
  EXPECT_EQ(network.edge_count(), 24u);
  EXPECT_EQ(network.Adjacent(0).size(), 2u);   // corner
  EXPECT_EQ(network.Adjacent(1).size(), 3u);   // border
  EXPECT_EQ(network.Adjacent(5).size(), 4u);   // interior
}

TEST(RoadNetworkTest, LocationValidation) {
  RoadNetwork network = testing::MakeLineNetwork(2);
  const Dist len = network.EdgeAt(0).length;
  EXPECT_TRUE(network.IsValidLocation({0, 0.0}));
  EXPECT_TRUE(network.IsValidLocation({0, len}));
  EXPECT_FALSE(network.IsValidLocation({0, len + 0.1}));
  EXPECT_FALSE(network.IsValidLocation({0, -0.1}));
  EXPECT_FALSE(network.IsValidLocation({5, 0.0}));
}

TEST(RoadNetworkTest, LocationPositionInterpolates) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({2, 0});
  network.AddEdge(0, 1);
  network.Finalize();
  const Point p = network.LocationPosition({0, 0.5});
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(RoadNetworkTest, EndpointDistances) {
  RoadNetwork network = testing::MakeLineNetwork(2);
  const Dist len = network.EdgeAt(0).length;
  const auto [du, dv] = network.EndpointDistances({0, len * 0.25});
  EXPECT_DOUBLE_EQ(du, len * 0.25);
  EXPECT_DOUBLE_EQ(dv, len * 0.75);
}

TEST(RoadNetworkTest, SnapToEdge) {
  RoadNetwork network;
  network.AddNode({0, 0});
  network.AddNode({4, 0});
  network.AddEdge(0, 1);
  network.Finalize();
  const Location loc = network.SnapToEdge(0, Point{1.0, 3.0});
  EXPECT_DOUBLE_EQ(loc.offset, 1.0);
  const Location clamped = network.SnapToEdge(0, Point{9.0, 1.0});
  EXPECT_DOUBLE_EQ(clamped.offset, 4.0);
}

TEST(RoadNetworkTest, BoundingBox) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const Mbr box = network.BoundingBox();
  EXPECT_DOUBLE_EQ(box.lo_x, 0.0);
  EXPECT_DOUBLE_EQ(box.hi_x, 1.0);
  EXPECT_DOUBLE_EQ(box.hi_y, 1.0);
}

TEST(RoadNetworkTest, ConnectedComponents) {
  RoadNetwork network;
  for (int i = 0; i < 4; ++i) {
    network.AddNode({static_cast<double>(i), 0});
  }
  network.AddEdge(0, 1);
  network.AddEdge(2, 3);
  network.Finalize();
  const auto [labels, count] = network.ConnectedComponents();
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_FALSE(network.IsConnected());
  EXPECT_TRUE(testing::MakeGridNetwork(3).IsConnected());
}

TEST(RoadNetworkTest, SaveLoadRoundTrip) {
  RoadNetwork network = testing::MakeGridNetwork(3);
  const std::string path = ::testing::TempDir() + "/msq_net.txt";
  ASSERT_TRUE(network.SaveToEdgeListFile(path));

  std::string error;
  auto loaded = RoadNetwork::LoadFromEdgeListFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node_count(), network.node_count());
  EXPECT_EQ(loaded->edge_count(), network.edge_count());
  for (EdgeId e = 0; e < network.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(loaded->EdgeAt(e).length, network.EdgeAt(e).length);
  }
  std::remove(path.c_str());
}

TEST(RoadNetworkTest, LoadRejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(
      RoadNetwork::LoadFromEdgeListFile("/no/such/file.txt", &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(RoadNetworkTest, LoadRejectsMalformedHeader) {
  const std::string path = ::testing::TempDir() + "/msq_bad1.txt";
  std::ofstream(path) << "garbage\n";
  std::string error;
  EXPECT_FALSE(RoadNetwork::LoadFromEdgeListFile(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(RoadNetworkTest, LoadRejectsOutOfRangeEdge) {
  const std::string path = ::testing::TempDir() + "/msq_bad2.txt";
  std::ofstream(path) << "2 1\n0 0\n1 1\n0 7\n";
  std::string error;
  EXPECT_FALSE(RoadNetwork::LoadFromEdgeListFile(path, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RoadNetworkTest, LoadRejectsSelfLoop) {
  const std::string path = ::testing::TempDir() + "/msq_bad3.txt";
  std::ofstream(path) << "2 1\n0 0\n1 1\n1 1\n";
  std::string error;
  EXPECT_FALSE(RoadNetwork::LoadFromEdgeListFile(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(RoadNetworkTest, LoadAcceptsCommentsAndOptionalLength) {
  const std::string path = ::testing::TempDir() + "/msq_ok.txt";
  std::ofstream(path) << "# comment\n2 1\n0 0\n3 4\n\n0 1\n";
  std::string error;
  auto loaded = RoadNetwork::LoadFromEdgeListFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // Omitted length defaults to Euclidean.
  EXPECT_DOUBLE_EQ(loaded->EdgeAt(0).length, 5.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msq
