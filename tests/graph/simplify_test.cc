#include "graph/simplify.h"

#include <cmath>
#include <queue>

#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "testing_support.h"

namespace msq {
namespace {

// Reference node-to-node distances on the in-memory adjacency.
std::vector<Dist> NodeDistances(const RoadNetwork& network, NodeId from) {
  std::vector<Dist> dist(network.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    for (const AdjacencyEntry& adj : network.Adjacent(node)) {
      const Dist nd = d + adj.length;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

TEST(SimplifyTest, LineCollapsesToSingleEdge) {
  RoadNetwork line = testing::MakeLineNetwork(10);
  const auto result = SimplifyDegree2Chains(line);
  // Only the two endpoints remain (interior nodes have degree 2).
  EXPECT_EQ(result.network.node_count(), 2u);
  EXPECT_EQ(result.network.edge_count(), 1u);
  EXPECT_NEAR(result.network.EdgeAt(0).length, 1.0, 1e-12);
  EXPECT_NE(result.node_map[0], kInvalidNode);
  EXPECT_NE(result.node_map[9], kInvalidNode);
  EXPECT_EQ(result.node_map[5], kInvalidNode);
}

TEST(SimplifyTest, GridUnchanged) {
  // Every grid node has degree 2 (corners) ... careful: corners have
  // degree 2 and are contractible; interior/border nodes are not.
  RoadNetwork grid = testing::MakeGridNetwork(4);
  const auto result = SimplifyDegree2Chains(grid);
  // 4 corners contracted away, 12 other nodes stay.
  EXPECT_EQ(result.network.node_count(), 12u);
  EXPECT_EQ(result.network.edge_count(), 20u);
}

TEST(SimplifyTest, JunctionDistancesPreserved) {
  // Subdivided generated network: simplification must preserve the metric
  // between surviving nodes exactly.
  const RoadNetwork network = GenerateNetwork({.node_count = 600,
                                               .edge_count = 700,
                                               .seed = 9,
                                               .curvature = 0.2,
                                               .junction_edge_ratio = 1.6});
  const auto result = SimplifyDegree2Chains(network);
  EXPECT_LT(result.network.node_count(), network.node_count());

  // Pick a surviving node and compare distances to all other survivors.
  NodeId original_from = kInvalidNode;
  for (NodeId v = 0; v < network.node_count(); ++v) {
    if (result.node_map[v] != kInvalidNode) {
      original_from = v;
      break;
    }
  }
  ASSERT_NE(original_from, kInvalidNode);
  const auto original = NodeDistances(network, original_from);
  const auto simplified =
      NodeDistances(result.network, result.node_map[original_from]);
  for (NodeId v = 0; v < network.node_count(); ++v) {
    if (result.node_map[v] == kInvalidNode) continue;
    EXPECT_NEAR(simplified[result.node_map[v]], original[v], 1e-9)
        << "node " << v;
  }
}

TEST(SimplifyTest, PureCycleKeptConnected) {
  // A standalone ring of degree-2 nodes.
  RoadNetwork ring;
  for (int i = 0; i < 6; ++i) {
    const double angle = i * M_PI / 3.0;
    ring.AddNode({0.5 + 0.4 * std::cos(angle), 0.5 + 0.4 * std::sin(angle)});
  }
  for (NodeId i = 0; i < 6; ++i) {
    ring.AddEdge(i, (i + 1) % 6);
  }
  ring.Finalize();
  const Dist circumference = [&] {
    Dist total = 0.0;
    for (EdgeId e = 0; e < ring.edge_count(); ++e) {
      total += ring.EdgeAt(e).length;
    }
    return total;
  }();

  const auto result = SimplifyDegree2Chains(ring);
  // Anchor + pivot, joined by two parallel arcs.
  EXPECT_EQ(result.network.node_count(), 2u);
  EXPECT_EQ(result.network.edge_count(), 2u);
  EXPECT_NEAR(result.network.EdgeAt(0).length +
                  result.network.EdgeAt(1).length,
              circumference, 1e-12);
  EXPECT_TRUE(result.network.IsConnected());
}

TEST(SimplifyTest, LoopAtJunctionSplitInTwo) {
  // A junction with a lollipop loop: j - a - b - j plus a stick j - t.
  RoadNetwork network;
  const NodeId j = network.AddNode({0.5, 0.5});
  const NodeId a = network.AddNode({0.6, 0.6});
  const NodeId b = network.AddNode({0.4, 0.6});
  const NodeId t = network.AddNode({0.5, 0.3});
  network.AddEdge(j, a);
  network.AddEdge(a, b);
  network.AddEdge(b, j);
  network.AddEdge(j, t);
  network.Finalize();

  const auto result = SimplifyDegree2Chains(network);
  // j and t are junctions (degree 3 and 1); the loop keeps one pivot.
  EXPECT_EQ(result.network.node_count(), 3u);
  EXPECT_EQ(result.network.edge_count(), 3u);
  EXPECT_TRUE(result.network.IsConnected());
  EXPECT_NE(result.node_map[j], kInvalidNode);
  EXPECT_NE(result.node_map[t], kInvalidNode);
}

TEST(SimplifyTest, AlreadySimplifiedIsIdentityShape) {
  // A triangle of degree-2 nodes... is a pure cycle; use a K4-ish graph
  // where every node has degree 3 instead.
  RoadNetwork network;
  for (int i = 0; i < 4; ++i) {
    network.AddNode({0.2 + 0.2 * (i % 2), 0.2 + 0.2 * (i / 2)});
  }
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId k = i + 1; k < 4; ++k) {
      network.AddEdge(i, k);
    }
  }
  network.Finalize();
  const auto result = SimplifyDegree2Chains(network);
  EXPECT_EQ(result.network.node_count(), 4u);
  EXPECT_EQ(result.network.edge_count(), 6u);
}

TEST(SimplifyTest, GeneratedNetworkShrinksToSkeleton) {
  // With junction_edge_ratio, most generated nodes are shape points;
  // simplification should recover roughly the junction skeleton.
  const RoadNetwork network = GenerateNetwork({.node_count = 2000,
                                               .edge_count = 2400,
                                               .seed = 5,
                                               .curvature = 0.0,
                                               .junction_edge_ratio = 1.8});
  const auto result = SimplifyDegree2Chains(network);
  EXPECT_LT(result.network.node_count(), network.node_count() / 2);
  EXPECT_TRUE(result.network.IsConnected());
  // |E| - |V| is invariant under degree-2 contraction (when no pivots are
  // introduced) or grows by the number of pivots; it never shrinks.
  const auto invariant_before =
      static_cast<std::ptrdiff_t>(network.edge_count()) -
      static_cast<std::ptrdiff_t>(network.node_count());
  const auto invariant_after =
      static_cast<std::ptrdiff_t>(result.network.edge_count()) -
      static_cast<std::ptrdiff_t>(result.network.node_count());
  EXPECT_GE(invariant_after, invariant_before);
}

}  // namespace
}  // namespace msq
