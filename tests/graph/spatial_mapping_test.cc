#include "graph/spatial_mapping.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

class SpatialMappingTest : public ::testing::Test {
 protected:
  SpatialMappingTest()
      : network_(testing::MakeGridNetwork(4)), buffer_(&disk_, 256) {}

  RoadNetwork network_;
  InMemoryDiskManager disk_;
  BufferManager buffer_;
};

TEST_F(SpatialMappingTest, ObjectsOnTheirEdges) {
  const Dist len = network_.EdgeAt(0).length;
  std::vector<Location> objects = {
      {0, len * 0.25}, {0, len * 0.75}, {3, len * 0.5}};
  SpatialMapping mapping(&network_, &buffer_, objects);
  EXPECT_EQ(mapping.object_count(), 3u);

  std::vector<EdgeObject> on_edge;
  mapping.ObjectsOnEdge(0, &on_edge);
  ASSERT_EQ(on_edge.size(), 2u);
  std::sort(on_edge.begin(), on_edge.end(),
            [](const EdgeObject& a, const EdgeObject& b) {
              return a.dist_u < b.dist_u;
            });
  EXPECT_EQ(on_edge[0].object, 0u);
  EXPECT_DOUBLE_EQ(on_edge[0].dist_u, len * 0.25);
  EXPECT_DOUBLE_EQ(on_edge[0].dist_v, len * 0.75);
  EXPECT_EQ(on_edge[1].object, 1u);

  on_edge.clear();
  mapping.ObjectsOnEdge(1, &on_edge);
  EXPECT_TRUE(on_edge.empty());
}

TEST_F(SpatialMappingTest, EndpointDistancesSumToLength) {
  std::vector<Location> objects;
  for (EdgeId e = 0; e < network_.edge_count(); ++e) {
    objects.push_back({e, network_.EdgeAt(e).length * 0.3});
  }
  SpatialMapping mapping(&network_, &buffer_, objects);
  std::vector<EdgeObject> on_edge;
  for (EdgeId e = 0; e < network_.edge_count(); ++e) {
    on_edge.clear();
    mapping.ObjectsOnEdge(e, &on_edge);
    ASSERT_EQ(on_edge.size(), 1u);
    EXPECT_NEAR(on_edge[0].dist_u + on_edge[0].dist_v,
                network_.EdgeAt(e).length, 1e-12);
  }
}

TEST_F(SpatialMappingTest, ManyObjectsPerEdge) {
  const Dist len = network_.EdgeAt(2).length;
  std::vector<Location> objects;
  for (int i = 0; i < 50; ++i) {
    objects.push_back({2, len * static_cast<double>(i) / 50.0});
  }
  SpatialMapping mapping(&network_, &buffer_, objects);
  std::vector<EdgeObject> on_edge;
  mapping.ObjectsOnEdge(2, &on_edge);
  EXPECT_EQ(on_edge.size(), 50u);
  // Every object id present exactly once.
  std::vector<ObjectId> ids;
  for (const auto& o : on_edge) ids.push_back(o.object);
  std::sort(ids.begin(), ids.end());
  for (ObjectId i = 0; i < 50; ++i) EXPECT_EQ(ids[i], i);
}

TEST_F(SpatialMappingTest, PositionsMatchNetworkInterpolation) {
  const Dist len = network_.EdgeAt(5).length;
  std::vector<Location> objects = {{5, len * 0.5}};
  SpatialMapping mapping(&network_, &buffer_, objects);
  const Point expected = network_.LocationPosition(objects[0]);
  EXPECT_EQ(mapping.ObjectPosition(0), expected);
  EXPECT_EQ(mapping.ObjectLocation(0), objects[0]);
}

TEST_F(SpatialMappingTest, EmptyObjectSet) {
  SpatialMapping mapping(&network_, &buffer_, {});
  EXPECT_EQ(mapping.object_count(), 0u);
  std::vector<EdgeObject> on_edge;
  mapping.ObjectsOnEdge(0, &on_edge);
  EXPECT_TRUE(on_edge.empty());
}

TEST_F(SpatialMappingTest, ProbesGoThroughBuffer) {
  std::vector<Location> objects;
  for (EdgeId e = 0; e < network_.edge_count(); ++e) {
    objects.push_back({e, 0.0});
  }
  SpatialMapping mapping(&network_, &buffer_, objects);
  buffer_.ResetStats();
  std::vector<EdgeObject> on_edge;
  mapping.ObjectsOnEdge(0, &on_edge);
  EXPECT_GT(buffer_.stats().accesses(), 0u);
}

}  // namespace
}  // namespace msq
