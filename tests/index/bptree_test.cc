#include "index/bptree.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

struct Payload {
  std::uint32_t a;
  double b;
};

BpTreeValue Val(std::uint32_t a, double b = 0.0) {
  return BpTreeValue::Pack(Payload{a, b});
}

class BpTreeTest : public ::testing::Test {
 protected:
  BpTreeTest() : buffer_(&disk_, 2048) {}
  InMemoryDiskManager disk_;
  BufferManager buffer_;
};

TEST_F(BpTreeTest, EmptyLookupFails) {
  BpTree tree(&buffer_);
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(42, &out).value());
  std::vector<BpTree::Item> items;
  tree.ScanRange(0, 100, &items);
  EXPECT_TRUE(items.empty());
}

TEST_F(BpTreeTest, InsertLookupSingle) {
  BpTree tree(&buffer_);
  tree.Insert(7, Val(70));
  BpTreeValue out;
  ASSERT_TRUE(tree.Lookup(7, &out).value());
  EXPECT_EQ(out.Unpack<Payload>().a, 70u);
  EXPECT_FALSE(tree.Lookup(8, &out).value());
}

TEST_F(BpTreeTest, ValuePackUnpackRoundTrip) {
  const BpTreeValue v = Val(123, 4.5);
  const Payload p = v.Unpack<Payload>();
  EXPECT_EQ(p.a, 123u);
  EXPECT_DOUBLE_EQ(p.b, 4.5);
}

TEST_F(BpTreeTest, ManyRandomInsertsLookupAll) {
  BpTree tree(&buffer_);
  Rng rng(42);
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.NextBounded(1000000);
    if (truth.count(key)) continue;
    truth[key] = static_cast<std::uint32_t>(i);
    tree.Insert(key, Val(static_cast<std::uint32_t>(i)));
  }
  EXPECT_GT(tree.height(), 1u);
  for (const auto& [key, value] : truth) {
    BpTreeValue out;
    ASSERT_TRUE(tree.Lookup(key, &out).value()) << key;
    EXPECT_EQ(out.Unpack<Payload>().a, value);
  }
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(2000000, &out).value());
}

TEST_F(BpTreeTest, SequentialInsertsSplitCorrectly) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 5;
  for (std::size_t i = 0; i < n; ++i) {
    tree.Insert(i, Val(static_cast<std::uint32_t>(i * 2)));
  }
  EXPECT_EQ(tree.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    BpTreeValue out;
    ASSERT_TRUE(tree.Lookup(i, &out).value());
    EXPECT_EQ(out.Unpack<Payload>().a, i * 2);
  }
}

TEST_F(BpTreeTest, ReverseSequentialInserts) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 3;
  for (std::size_t i = n; i > 0; --i) {
    tree.Insert(i, Val(static_cast<std::uint32_t>(i)));
  }
  std::vector<BpTree::Item> items;
  tree.ScanRange(1, n, &items);
  ASSERT_EQ(items.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(items[i].first, i + 1);
  }
}

TEST_F(BpTreeTest, ScanRangeSubset) {
  BpTree tree(&buffer_);
  for (std::uint64_t k = 0; k < 100; k += 2) tree.Insert(k, Val(0));
  std::vector<BpTree::Item> items;
  tree.ScanRange(10, 20, &items);
  std::vector<std::uint64_t> keys;
  for (const auto& item : items) keys.push_back(item.first);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 12, 14, 16, 18, 20}));
}

TEST_F(BpTreeTest, ScanRangeAcrossLeaves) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 4;
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i, Val(0));
  std::vector<BpTree::Item> items;
  const std::uint64_t lo = BpTree::LeafCapacity() - 3;
  const std::uint64_t hi = BpTree::LeafCapacity() * 2 + 3;
  tree.ScanRange(lo, hi, &items);
  ASSERT_EQ(items.size(), hi - lo + 1);
  EXPECT_EQ(items.front().first, lo);
  EXPECT_EQ(items.back().first, hi);
}

TEST_F(BpTreeTest, DuplicateKeysAllReturned) {
  BpTree tree(&buffer_);
  tree.Insert(5, Val(1));
  tree.Insert(5, Val(2));
  tree.Insert(5, Val(3));
  std::vector<BpTree::Item> items;
  tree.ScanRange(5, 5, &items);
  EXPECT_EQ(items.size(), 3u);
  std::vector<std::uint32_t> values;
  for (const auto& item : items) {
    values.push_back(item.second.Unpack<Payload>().a);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(BpTreeTest, BulkLoadLookupAndScan) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 7 + 13;
  std::vector<BpTree::Item> input;
  for (std::size_t i = 0; i < n; ++i) {
    input.emplace_back(i * 3, Val(static_cast<std::uint32_t>(i)));
  }
  tree.BulkLoad(input);
  EXPECT_EQ(tree.size(), n);

  BpTreeValue out;
  EXPECT_TRUE(tree.Lookup(0, &out).value());
  EXPECT_TRUE(tree.Lookup((n - 1) * 3, &out).value());
  EXPECT_FALSE(tree.Lookup(1, &out).value());

  std::vector<BpTree::Item> items;
  tree.ScanRange(0, n * 3, &items);
  EXPECT_EQ(items.size(), n);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST_F(BpTreeTest, BulkLoadEmpty) {
  BpTree tree(&buffer_);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(0, &out).value());
}

TEST_F(BpTreeTest, InsertAfterBulkLoad) {
  BpTree tree(&buffer_);
  std::vector<BpTree::Item> input;
  for (std::uint64_t i = 0; i < 100; ++i) {
    input.emplace_back(i * 10, Val(static_cast<std::uint32_t>(i)));
  }
  tree.BulkLoad(input);
  tree.Insert(55, Val(999));
  BpTreeValue out;
  ASSERT_TRUE(tree.Lookup(55, &out).value());
  EXPECT_EQ(out.Unpack<Payload>().a, 999u);
  // Pre-existing keys still present.
  EXPECT_TRUE(tree.Lookup(50, &out).value());
  EXPECT_TRUE(tree.Lookup(60, &out).value());
}

TEST_F(BpTreeTest, HeightStaysLogarithmic) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 20;
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i, Val(0));
  EXPECT_LE(tree.height(), 3u);
}

TEST_F(BpTreeTest, EdgeKeyCompositeRangeConvention) {
  // The spatial-mapping convention: (edge << 32 | seq) keys make one edge's
  // records a contiguous range.
  BpTree tree(&buffer_);
  auto key = [](std::uint32_t edge, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(edge) << 32) | seq;
  };
  tree.Insert(key(5, 0), Val(50));
  tree.Insert(key(5, 1), Val(51));
  tree.Insert(key(4, 0), Val(40));
  tree.Insert(key(6, 0), Val(60));

  std::vector<BpTree::Item> items;
  tree.ScanRange(key(5, 0), key(5, 0xffffffffu), &items);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].second.Unpack<Payload>().a, 50u);
  EXPECT_EQ(items[1].second.Unpack<Payload>().a, 51u);
}

TEST_F(BpTreeTest, DeleteSingleAndMissing) {
  BpTree tree(&buffer_);
  tree.Insert(7, Val(70));
  tree.Insert(9, Val(90));
  EXPECT_TRUE(tree.Delete(7).value());
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(7, &out).value());
  EXPECT_TRUE(tree.Lookup(9, &out).value());
  EXPECT_FALSE(tree.Delete(7).value());
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BpTreeTest, DeleteEverythingDrainsTreeThenReinserts) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 6;
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i, Val(i));
  EXPECT_GT(tree.height(), 1u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Delete(i).value()) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(0, &out).value());
  // The drained tree accepts fresh inserts (freed pages get recycled).
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i * 2, Val(i));
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.Lookup(2, &out).value());
  EXPECT_EQ(out.Unpack<Payload>().a, 1u);
}

TEST_F(BpTreeTest, RandomChurnMatchesTruthWithRebalances) {
  // Interleaved inserts and deletes heavy enough to force leaf underflow,
  // borrow, merge, and root collapse, checked against a std::map oracle
  // after every phase.
  BpTree tree(&buffer_);
  Rng rng(1234);
  std::map<std::uint64_t, std::uint32_t> truth;
  auto check_all = [&] {
    ASSERT_EQ(tree.size(), truth.size());
    std::vector<BpTree::Item> items;
    ASSERT_TRUE(tree.ScanRange(0, ~0ull, &items).ok());
    ASSERT_EQ(items.size(), truth.size());
    std::size_t i = 0;
    for (const auto& [key, value] : truth) {
      ASSERT_EQ(items[i].first, key);
      ASSERT_EQ(items[i].second.Unpack<Payload>().a, value);
      ++i;
    }
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng.NextBounded(4000);
      if (rng.NextBounded(100) < 55) {
        if (truth.count(key)) continue;
        truth[key] = static_cast<std::uint32_t>(i);
        tree.Insert(key, Val(static_cast<std::uint32_t>(i)));
      } else {
        const bool removed = tree.Delete(key).value();
        ASSERT_EQ(removed, truth.erase(key) > 0) << key;
      }
    }
    check_all();
  }
  // Drain-heavy phase: shrink far enough to collapse internal levels.
  while (truth.size() > 8) {
    const std::uint64_t key = truth.begin()->first;
    ASSERT_TRUE(tree.Delete(key).value());
    truth.erase(key);
  }
  check_all();
  EXPECT_EQ(tree.height(), 1u);
}

TEST_F(BpTreeTest, DuplicateKeysStayAdjacentUnderChurn) {
  // The middle-layer invariant: all items of one key come back adjacent in
  // a range scan, across splits and delete-driven rebalances. Duplicates
  // are hammered around one hot key while neighbors churn.
  BpTree tree(&buffer_);
  const std::uint64_t hot = 500;
  std::size_t hot_count = 0;
  Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    const int coin = static_cast<int>(rng.NextBounded(100));
    if (coin < 30) {
      tree.Insert(hot, Val(static_cast<std::uint32_t>(hot_count)));
      ++hot_count;
    } else if (coin < 45 && hot_count > 0) {
      ASSERT_TRUE(tree.Delete(hot).value());
      --hot_count;
    } else {
      const std::uint64_t key = rng.NextBounded(1000);
      if (key == hot) continue;
      if (coin < 80) {
        tree.Insert(key, Val(static_cast<std::uint32_t>(i)));
      } else {
        (void)tree.Delete(key).value();
      }
    }
    if (i % 500 != 499) continue;
    // All duplicates of the hot key are returned by its point range, and
    // they sit adjacent in a full scan.
    std::vector<BpTree::Item> items;
    ASSERT_TRUE(tree.ScanRange(hot, hot, &items).ok());
    ASSERT_EQ(items.size(), hot_count) << "after op " << i;
    items.clear();
    ASSERT_TRUE(tree.ScanRange(0, ~0ull, &items).ok());
    std::size_t first = items.size();
    std::size_t last = 0;
    std::size_t seen = 0;
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (items[j].first != hot) continue;
      first = std::min(first, j);
      last = j;
      ++seen;
    }
    ASSERT_EQ(seen, hot_count);
    if (seen > 0) {
      EXPECT_EQ(last - first + 1, seen)
          << "duplicates of key " << hot << " not adjacent after op " << i;
    }
  }
}

}  // namespace
}  // namespace msq
