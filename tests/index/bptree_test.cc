#include "index/bptree.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

struct Payload {
  std::uint32_t a;
  double b;
};

BpTreeValue Val(std::uint32_t a, double b = 0.0) {
  return BpTreeValue::Pack(Payload{a, b});
}

class BpTreeTest : public ::testing::Test {
 protected:
  BpTreeTest() : buffer_(&disk_, 2048) {}
  InMemoryDiskManager disk_;
  BufferManager buffer_;
};

TEST_F(BpTreeTest, EmptyLookupFails) {
  BpTree tree(&buffer_);
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(42, &out).value());
  std::vector<BpTree::Item> items;
  tree.ScanRange(0, 100, &items);
  EXPECT_TRUE(items.empty());
}

TEST_F(BpTreeTest, InsertLookupSingle) {
  BpTree tree(&buffer_);
  tree.Insert(7, Val(70));
  BpTreeValue out;
  ASSERT_TRUE(tree.Lookup(7, &out).value());
  EXPECT_EQ(out.Unpack<Payload>().a, 70u);
  EXPECT_FALSE(tree.Lookup(8, &out).value());
}

TEST_F(BpTreeTest, ValuePackUnpackRoundTrip) {
  const BpTreeValue v = Val(123, 4.5);
  const Payload p = v.Unpack<Payload>();
  EXPECT_EQ(p.a, 123u);
  EXPECT_DOUBLE_EQ(p.b, 4.5);
}

TEST_F(BpTreeTest, ManyRandomInsertsLookupAll) {
  BpTree tree(&buffer_);
  Rng rng(42);
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.NextBounded(1000000);
    if (truth.count(key)) continue;
    truth[key] = static_cast<std::uint32_t>(i);
    tree.Insert(key, Val(static_cast<std::uint32_t>(i)));
  }
  EXPECT_GT(tree.height(), 1u);
  for (const auto& [key, value] : truth) {
    BpTreeValue out;
    ASSERT_TRUE(tree.Lookup(key, &out).value()) << key;
    EXPECT_EQ(out.Unpack<Payload>().a, value);
  }
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(2000000, &out).value());
}

TEST_F(BpTreeTest, SequentialInsertsSplitCorrectly) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 5;
  for (std::size_t i = 0; i < n; ++i) {
    tree.Insert(i, Val(static_cast<std::uint32_t>(i * 2)));
  }
  EXPECT_EQ(tree.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    BpTreeValue out;
    ASSERT_TRUE(tree.Lookup(i, &out).value());
    EXPECT_EQ(out.Unpack<Payload>().a, i * 2);
  }
}

TEST_F(BpTreeTest, ReverseSequentialInserts) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 3;
  for (std::size_t i = n; i > 0; --i) {
    tree.Insert(i, Val(static_cast<std::uint32_t>(i)));
  }
  std::vector<BpTree::Item> items;
  tree.ScanRange(1, n, &items);
  ASSERT_EQ(items.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(items[i].first, i + 1);
  }
}

TEST_F(BpTreeTest, ScanRangeSubset) {
  BpTree tree(&buffer_);
  for (std::uint64_t k = 0; k < 100; k += 2) tree.Insert(k, Val(0));
  std::vector<BpTree::Item> items;
  tree.ScanRange(10, 20, &items);
  std::vector<std::uint64_t> keys;
  for (const auto& item : items) keys.push_back(item.first);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 12, 14, 16, 18, 20}));
}

TEST_F(BpTreeTest, ScanRangeAcrossLeaves) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 4;
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i, Val(0));
  std::vector<BpTree::Item> items;
  const std::uint64_t lo = BpTree::LeafCapacity() - 3;
  const std::uint64_t hi = BpTree::LeafCapacity() * 2 + 3;
  tree.ScanRange(lo, hi, &items);
  ASSERT_EQ(items.size(), hi - lo + 1);
  EXPECT_EQ(items.front().first, lo);
  EXPECT_EQ(items.back().first, hi);
}

TEST_F(BpTreeTest, DuplicateKeysAllReturned) {
  BpTree tree(&buffer_);
  tree.Insert(5, Val(1));
  tree.Insert(5, Val(2));
  tree.Insert(5, Val(3));
  std::vector<BpTree::Item> items;
  tree.ScanRange(5, 5, &items);
  EXPECT_EQ(items.size(), 3u);
  std::vector<std::uint32_t> values;
  for (const auto& item : items) {
    values.push_back(item.second.Unpack<Payload>().a);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(BpTreeTest, BulkLoadLookupAndScan) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 7 + 13;
  std::vector<BpTree::Item> input;
  for (std::size_t i = 0; i < n; ++i) {
    input.emplace_back(i * 3, Val(static_cast<std::uint32_t>(i)));
  }
  tree.BulkLoad(input);
  EXPECT_EQ(tree.size(), n);

  BpTreeValue out;
  EXPECT_TRUE(tree.Lookup(0, &out).value());
  EXPECT_TRUE(tree.Lookup((n - 1) * 3, &out).value());
  EXPECT_FALSE(tree.Lookup(1, &out).value());

  std::vector<BpTree::Item> items;
  tree.ScanRange(0, n * 3, &items);
  EXPECT_EQ(items.size(), n);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST_F(BpTreeTest, BulkLoadEmpty) {
  BpTree tree(&buffer_);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  BpTreeValue out;
  EXPECT_FALSE(tree.Lookup(0, &out).value());
}

TEST_F(BpTreeTest, InsertAfterBulkLoad) {
  BpTree tree(&buffer_);
  std::vector<BpTree::Item> input;
  for (std::uint64_t i = 0; i < 100; ++i) {
    input.emplace_back(i * 10, Val(static_cast<std::uint32_t>(i)));
  }
  tree.BulkLoad(input);
  tree.Insert(55, Val(999));
  BpTreeValue out;
  ASSERT_TRUE(tree.Lookup(55, &out).value());
  EXPECT_EQ(out.Unpack<Payload>().a, 999u);
  // Pre-existing keys still present.
  EXPECT_TRUE(tree.Lookup(50, &out).value());
  EXPECT_TRUE(tree.Lookup(60, &out).value());
}

TEST_F(BpTreeTest, HeightStaysLogarithmic) {
  BpTree tree(&buffer_);
  const std::size_t n = BpTree::LeafCapacity() * 20;
  for (std::size_t i = 0; i < n; ++i) tree.Insert(i, Val(0));
  EXPECT_LE(tree.height(), 3u);
}

TEST_F(BpTreeTest, EdgeKeyCompositeRangeConvention) {
  // The spatial-mapping convention: (edge << 32 | seq) keys make one edge's
  // records a contiguous range.
  BpTree tree(&buffer_);
  auto key = [](std::uint32_t edge, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(edge) << 32) | seq;
  };
  tree.Insert(key(5, 0), Val(50));
  tree.Insert(key(5, 1), Val(51));
  tree.Insert(key(4, 0), Val(40));
  tree.Insert(key(6, 0), Val(60));

  std::vector<BpTree::Item> items;
  tree.ScanRange(key(5, 0), key(5, 0xffffffffu), &items);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].second.Unpack<Payload>().a, 50u);
  EXPECT_EQ(items[1].second.Unpack<Payload>().a, 51u);
}

}  // namespace
}  // namespace msq
