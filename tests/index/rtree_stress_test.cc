// Model-based stress test: the R-tree against a brute-force reference
// under randomized insert/delete/window/kNN streams, including rectangle
// (non-point) entries.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

struct ModelEntry {
  Mbr mbr;
  std::uint32_t id;
};

Mbr RandomRect(Rng& rng, double max_extent) {
  const double x = rng.NextDouble();
  const double y = rng.NextDouble();
  const double w = rng.NextDouble() * max_extent;
  const double h = rng.NextDouble() * max_extent;
  return Mbr{x, y, std::min(1.0, x + w), std::min(1.0, y + h)};
}

class RTreeStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RTreeStressTest, MatchesBruteForce) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4096);
  RTree tree(&buffer);
  std::vector<ModelEntry> model;
  Rng rng(GetParam());
  std::uint32_t next_id = 0;

  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t kind = rng.NextBounded(10);
    if (kind < 5 || model.empty()) {
      // Insert (points and small rectangles).
      const Mbr mbr = rng.NextBounded(2) == 0
                          ? Mbr::FromPoint(
                                {rng.NextDouble(), rng.NextDouble()})
                          : RandomRect(rng, 0.05);
      tree.Insert(mbr, next_id);
      model.push_back(ModelEntry{mbr, next_id});
      ++next_id;
    } else if (kind < 7) {
      // Delete a random live entry.
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(tree.Delete(model[pick].mbr, model[pick].id));
      model[pick] = model.back();
      model.pop_back();
    } else if (kind < 9) {
      // Window query.
      const Mbr window = RandomRect(rng, 0.4);
      std::vector<std::uint32_t> got;
      tree.WindowQuery(window, &got);
      std::sort(got.begin(), got.end());
      std::vector<std::uint32_t> expected;
      for (const ModelEntry& e : model) {
        if (e.mbr.Intersects(window)) expected.push_back(e.id);
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "window mismatch at op " << op;
    } else {
      // kNN (by MBR MinDist).
      const Point query{rng.NextDouble(), rng.NextDouble()};
      const std::size_t k = 1 + rng.NextBounded(8);
      std::vector<std::uint32_t> got;
      tree.KnnQuery(query, k, &got);
      // Compare realized distances against the brute-force order.
      std::vector<Dist> expected_dists;
      for (const ModelEntry& e : model) {
        expected_dists.push_back(e.mbr.MinDist(query));
      }
      std::sort(expected_dists.begin(), expected_dists.end());
      ASSERT_EQ(got.size(), std::min(k, model.size()));
      for (std::size_t i = 0; i < got.size(); ++i) {
        // Find the got entry's distance in the model.
        Dist got_dist = kInfDist;
        for (const ModelEntry& e : model) {
          if (e.id == got[i]) got_dist = e.mbr.MinDist(query);
        }
        EXPECT_NEAR(got_dist, expected_dists[i], 1e-12)
            << "knn rank " << i << " at op " << op;
      }
    }
    ASSERT_EQ(tree.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeStressTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace msq
