#include "index/rtree.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"

namespace msq {
namespace {

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest() : buffer_(&disk_, 1024) {}

  std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Point> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    }
    return points;
  }

  InMemoryDiskManager disk_;
  BufferManager buffer_;
};

TEST_F(RTreeTest, EmptyTree) {
  RTree tree(&buffer_);
  EXPECT_EQ(tree.size(), 0u);
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_TRUE(hits.empty());
  RTreeNnBrowser browser(&tree, Point{0.5, 0.5});
  EXPECT_FALSE(browser.Next().found);
}

TEST_F(RTreeTest, InsertAndWindowQuery) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.1, 0.1}), 1);
  tree.Insert(Mbr::FromPoint({0.9, 0.9}), 2);
  tree.Insert(Mbr::FromPoint({0.5, 0.5}), 3);
  EXPECT_EQ(tree.size(), 3u);

  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0.0, 0.0, 0.6, 0.6}, &hits);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{1, 3}));
}

TEST_F(RTreeTest, WindowBoundaryInclusive) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.5, 0.5}), 9);
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0.5, 0.5, 0.6, 0.6}, &hits);
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(RTreeTest, ManyInsertsAllRetrievable) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(2000, 42);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  EXPECT_EQ(tree.size(), points.size());
  EXPECT_GT(tree.height(), 1u);

  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_EQ(hits.size(), points.size());
  std::sort(hits.begin(), hits.end());
  for (std::uint32_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i);
}

TEST_F(RTreeTest, WindowQueryMatchesLinearScanAfterInserts) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(500, 7);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  const Mbr window{0.2, 0.3, 0.6, 0.8};
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(window, &hits);
  std::sort(hits.begin(), hits.end());

  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (window.Contains(points[i])) expected.push_back(i);
  }
  EXPECT_EQ(hits, expected);
}

TEST_F(RTreeTest, BulkLoadMatchesLinearScan) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(3000, 99);
  std::vector<RTreeEntry> items;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    items.push_back(RTreeEntry{Mbr::FromPoint(points[i]), i});
  }
  tree.BulkLoad(std::move(items));
  EXPECT_EQ(tree.size(), points.size());

  const Mbr window{0.1, 0.1, 0.35, 0.9};
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(window, &hits);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (window.Contains(points[i])) expected.push_back(i);
  }
  EXPECT_EQ(hits, expected);
}

TEST_F(RTreeTest, BulkLoadEmpty) {
  RTree tree(&buffer_);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST_F(RTreeTest, BulkLoadSingleItem) {
  RTree tree(&buffer_);
  tree.BulkLoad({RTreeEntry{Mbr::FromPoint({0.3, 0.3}), 5}});
  EXPECT_EQ(tree.size(), 1u);
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{5}));
}

TEST_F(RTreeTest, RectangleEntriesIntersectionSemantics) {
  RTree tree(&buffer_);
  tree.Insert(Mbr{0.0, 0.0, 0.4, 0.4}, 1);
  tree.Insert(Mbr{0.6, 0.6, 0.9, 0.9}, 2);
  std::vector<std::uint32_t> hits;
  // Window overlapping entry 1 only partially still reports it.
  tree.WindowQuery(Mbr{0.3, 0.3, 0.5, 0.5}, &hits);
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{1}));
}

TEST_F(RTreeTest, ForEachEntryVisitsAll) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(300, 3);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  std::vector<bool> seen(points.size(), false);
  tree.ForEachEntry([&](const RTreeEntry& e) { seen[e.id] = true; });
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool b) { return b; }));
}

TEST_F(RTreeTest, NnBrowserAscendingOrder) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(800, 11);
  std::vector<RTreeEntry> items;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    items.push_back(RTreeEntry{Mbr::FromPoint(points[i]), i});
  }
  tree.BulkLoad(std::move(items));

  const Point query{0.5, 0.5};
  RTreeNnBrowser browser(&tree, query);
  Dist last = 0.0;
  std::size_t count = 0;
  for (auto r = browser.Next(); r.found; r = browser.Next()) {
    EXPECT_GE(r.distance + 1e-12, last);
    EXPECT_NEAR(r.distance, EuclideanDistance(points[r.id], query), 1e-12);
    last = r.distance;
    ++count;
  }
  EXPECT_EQ(count, points.size());
}

TEST_F(RTreeTest, NnBrowserMatchesLinearScanOrder) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(200, 21);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  const Point query{0.1, 0.9};
  std::vector<std::uint32_t> expected(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) expected[i] = i;
  std::sort(expected.begin(), expected.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return SquaredDistance(points[a], query) <
                     SquaredDistance(points[b], query);
            });

  RTreeNnBrowser browser(&tree, query);
  for (const std::uint32_t want : expected) {
    const auto r = browser.Next();
    ASSERT_TRUE(r.found);
    // Ties can swap; compare distances, not ids.
    EXPECT_NEAR(r.distance, EuclideanDistance(points[want], query), 1e-12);
  }
  EXPECT_FALSE(browser.Next().found);
}

TEST_F(RTreeTest, NnBrowserPrunePredicateSkips) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.2, 0.5}), 1);
  tree.Insert(Mbr::FromPoint({0.4, 0.5}), 2);
  tree.Insert(Mbr::FromPoint({0.6, 0.5}), 3);

  // Prune everything with x < 0.5.
  RTreeNnBrowser browser(&tree, Point{0.0, 0.5},
                         [](const RTreeEntry& e, bool is_leaf) {
                           return is_leaf && e.mbr.hi_x < 0.5;
                         });
  const auto r = browser.Next();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.id, 3u);
  EXPECT_FALSE(browser.Next().found);
}

TEST_F(RTreeTest, NnBrowserRetroactivePrune) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.2, 0.5}), 1);
  tree.Insert(Mbr::FromPoint({0.4, 0.5}), 2);

  bool prune_all = false;
  RTreeNnBrowser browser(&tree, Point{0.0, 0.5},
                         [&](const RTreeEntry&, bool is_leaf) {
                           return is_leaf && prune_all;
                         });
  EXPECT_TRUE(browser.Next().found);
  prune_all = true;  // state grows between calls, as S does in LBC
  EXPECT_FALSE(browser.Next().found);
}

TEST_F(RTreeTest, PeekLowerBoundIsLowerBound) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(100, 5);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  RTreeNnBrowser browser(&tree, Point{0.5, 0.5});
  for (;;) {
    const Dist bound = browser.PeekLowerBound();
    const auto r = browser.Next();
    if (!r.found) break;
    EXPECT_LE(bound, r.distance + 1e-12);
  }
}

TEST_F(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(&buffer_);
  const std::size_t cap = RTree::MaxEntriesPerNode();
  const auto points = RandomPoints(cap * 3, 13);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  EXPECT_GE(tree.height(), 2u);
  EXPECT_LE(tree.height(), 4u);
}

TEST_F(RTreeTest, DeleteSingleEntry) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.5, 0.5}), 7);
  EXPECT_TRUE(tree.Delete(Mbr::FromPoint({0.5, 0.5}), 7));
  EXPECT_EQ(tree.size(), 0u);
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST_F(RTreeTest, DeleteMissingEntryReturnsFalse) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.5, 0.5}), 7);
  EXPECT_FALSE(tree.Delete(Mbr::FromPoint({0.5, 0.5}), 8));   // wrong id
  EXPECT_FALSE(tree.Delete(Mbr::FromPoint({0.4, 0.5}), 7));   // wrong mbr
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(RTreeTest, DeleteHalfThenQueriesStillExact) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(1500, 77);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  // Delete every even id.
  for (std::uint32_t i = 0; i < points.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(Mbr::FromPoint(points[i]), i)) << i;
  }
  EXPECT_EQ(tree.size(), points.size() / 2);

  const Mbr window{0.1, 0.2, 0.7, 0.9};
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(window, &hits);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 1; i < points.size(); i += 2) {
    if (window.Contains(points[i])) expected.push_back(i);
  }
  EXPECT_EQ(hits, expected);
}

TEST_F(RTreeTest, DeleteEverythingThenReinsert) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(600, 31);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Delete(Mbr::FromPoint(points[i]), i));
  }
  EXPECT_EQ(tree.size(), 0u);
  // The condensed tree accepts new inserts.
  tree.Insert(Mbr::FromPoint({0.3, 0.3}), 999);
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{999}));
}

TEST_F(RTreeTest, DeleteCondensesHeight) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(2000, 13);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  const std::uint32_t tall = tree.height();
  for (std::uint32_t i = 0; i < 1990; ++i) {
    ASSERT_TRUE(tree.Delete(Mbr::FromPoint(points[i]), i));
  }
  EXPECT_LT(tree.height(), tall);
  // Remaining entries all retrievable.
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  EXPECT_EQ(hits.size(), 10u);
}

TEST_F(RTreeTest, DeleteInterleavedWithInserts) {
  RTree tree(&buffer_);
  Rng rng(5);
  std::vector<Point> live_points;
  std::vector<std::uint32_t> live_ids;
  std::uint32_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live_ids.empty() || rng.NextBounded(3) != 0) {
      const Point p{rng.NextDouble(), rng.NextDouble()};
      tree.Insert(Mbr::FromPoint(p), next_id);
      live_points.push_back(p);
      live_ids.push_back(next_id++);
    } else {
      const std::size_t pick = rng.NextBounded(live_ids.size());
      ASSERT_TRUE(tree.Delete(Mbr::FromPoint(live_points[pick]),
                              live_ids[pick]));
      live_points[pick] = live_points.back();
      live_points.pop_back();
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
    }
  }
  EXPECT_EQ(tree.size(), live_ids.size());
  std::vector<std::uint32_t> hits;
  tree.WindowQuery(Mbr{0, 0, 1, 1}, &hits);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint32_t> expected = live_ids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(hits, expected);
}

TEST_F(RTreeTest, KnnQueryMatchesLinearScan) {
  RTree tree(&buffer_);
  const auto points = RandomPoints(400, 3);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  const Point query{0.4, 0.6};
  std::vector<std::uint32_t> got;
  tree.KnnQuery(query, 10, &got);
  ASSERT_EQ(got.size(), 10u);

  std::vector<std::uint32_t> order(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return SquaredDistance(points[a], query) <
                     SquaredDistance(points[b], query);
            });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(EuclideanDistance(points[got[i]], query),
                EuclideanDistance(points[order[i]], query), 1e-12);
  }
}

TEST_F(RTreeTest, KnnQueryMoreThanSize) {
  RTree tree(&buffer_);
  tree.Insert(Mbr::FromPoint({0.1, 0.1}), 1);
  tree.Insert(Mbr::FromPoint({0.2, 0.2}), 2);
  std::vector<std::uint32_t> got;
  tree.KnnQuery(Point{0, 0}, 10, &got);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2}));
}

TEST_F(RTreeTest, NodeFitsInOnePage) {
  // A full node must serialize into a 4 KB page.
  const std::size_t cap = RTree::MaxEntriesPerNode();
  EXPECT_GT(cap, 50u);
  EXPECT_LE(5 + cap * 36, kPageSize);
}

// Checked (runtime) mutations under injected storage faults: the COW
// write paths must surface a typed error and leave the tree byte-identical
// — never a torn split or a leaked/corrupted page.
class RTreeFaultTest : public ::testing::Test {
 protected:
  RTreeFaultTest()
      : faults_(&disk_, FaultInjectionConfig{.seed = 11,
                                             .corrupt_read_rate = 0.1}),
        buffer_(&faults_, 64) {}

  std::vector<std::uint32_t> AllIds(const RTree& tree) {
    std::vector<std::uint32_t> hits;
    tree.WindowQuery(Mbr{-2.0, -2.0, 2.0, 2.0}, &hits);
    std::sort(hits.begin(), hits.end());
    return hits;
  }

  InMemoryDiskManager disk_;
  FaultInjectingDiskManager faults_;
  BufferManager buffer_;
};

TEST_F(RTreeFaultTest, CheckedMutationsMatchUncheckedSemantics) {
  RTree tree(&buffer_);
  Rng rng(21);
  std::vector<Point> points;
  for (std::uint32_t i = 0; i < 1200; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    ASSERT_TRUE(tree.InsertChecked(Mbr::FromPoint(points[i]), i).ok());
  }
  EXPECT_EQ(tree.size(), points.size());
  EXPECT_GT(tree.height(), 1u);
  // Delete the even half; absent entries report false, not an error.
  for (std::uint32_t i = 0; i < points.size(); i += 2) {
    StatusOr<bool> removed =
        tree.DeleteChecked(Mbr::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok());
    EXPECT_TRUE(removed.value());
  }
  StatusOr<bool> missing =
      tree.DeleteChecked(Mbr::FromPoint(points[0]), 0);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value());
  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 1; i < points.size(); i += 2) {
    expected.push_back(i);
  }
  EXPECT_EQ(AllIds(tree), expected);
}

TEST_F(RTreeFaultTest, ScriptedReadFaultAbortsInsertCleanly) {
  RTree tree(&buffer_);
  Rng rng(5);
  for (std::uint32_t i = 0; i < 800; ++i) {
    tree.Insert(Mbr::FromPoint({rng.NextDouble(), rng.NextDouble()}), i);
  }
  const std::vector<std::uint32_t> baseline = AllIds(tree);
  const std::size_t live_pages = disk_.PageCount() - disk_.FreeCount();
  for (int attempt = 0; attempt < 4; ++attempt) {
    // Drop the pool so the op's first node read is a guaranteed disk read,
    // which the scripted fault then fails deterministically.
    ASSERT_TRUE(buffer_.Clear().ok());
    faults_.FailNextReads(1, StatusCode::kIoError);
    const Status status = tree.InsertChecked(
        Mbr::FromPoint({rng.NextDouble(), rng.NextDouble()}),
        9000 + static_cast<std::uint32_t>(attempt));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_EQ(tree.size(), 800u);
    EXPECT_EQ(AllIds(tree), baseline);
    // The aborted op returned every fresh COW page: no storage leak.
    EXPECT_EQ(disk_.PageCount() - disk_.FreeCount(), live_pages);
  }
}

TEST_F(RTreeFaultTest, ScriptedReadFaultAbortsDeleteCleanly) {
  RTree tree(&buffer_);
  Rng rng(6);
  std::vector<Point> points;
  for (std::uint32_t i = 0; i < 800; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    tree.Insert(Mbr::FromPoint(points[i]), i);
  }
  const std::vector<std::uint32_t> baseline = AllIds(tree);
  const std::size_t live_pages = disk_.PageCount() - disk_.FreeCount();
  for (int attempt = 0; attempt < 4; ++attempt) {
    ASSERT_TRUE(buffer_.Clear().ok());
    faults_.FailNextReads(1, StatusCode::kIoError);
    const std::uint32_t victim = static_cast<std::uint32_t>(attempt) * 7;
    StatusOr<bool> removed =
        tree.DeleteChecked(Mbr::FromPoint(points[victim]), victim);
    ASSERT_FALSE(removed.ok());
    EXPECT_EQ(removed.status().code(), StatusCode::kIoError);
    EXPECT_EQ(tree.size(), 800u);
    EXPECT_EQ(AllIds(tree), baseline);
    EXPECT_EQ(disk_.PageCount() - disk_.FreeCount(), live_pages);
  }
}

TEST_F(RTreeFaultTest, SeededFaultScheduleChurnNeverCorrupts) {
  // 300 mixed checked mutations under a seeded probabilistic corrupt-read
  // schedule: each op either applies exactly or fails with a typed error
  // and no visible effect. A shadow model tracks the expected contents;
  // verification runs with injection disarmed.
  RTree tree(&buffer_);
  Rng rng(99);
  std::map<std::uint32_t, Point> shadow;
  for (std::uint32_t i = 0; i < 600; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(tree.InsertChecked(Mbr::FromPoint(p), i).ok());
    shadow[i] = p;
  }
  const std::size_t live_start = disk_.PageCount() - disk_.FreeCount();
  std::uint32_t next_id = 600;
  std::size_t failed_ops = 0;
  faults_.Arm();
  for (int op = 0; op < 300; ++op) {
    // Keep the op's node reads on disk — a warm pool would absorb every
    // read and the armed schedule would never fire.
    ASSERT_TRUE(buffer_.Clear().ok());
    if (rng.NextBounded(2) == 0) {
      const Point p{rng.NextDouble(), rng.NextDouble()};
      const std::uint32_t id = next_id;
      const Status status = tree.InsertChecked(Mbr::FromPoint(p), id);
      if (status.ok()) {
        shadow[id] = p;
        ++next_id;
      } else {
        ++failed_ops;
      }
    } else if (!shadow.empty()) {
      auto it = shadow.begin();
      std::advance(it, rng.NextBounded(shadow.size()));
      StatusOr<bool> removed =
          tree.DeleteChecked(Mbr::FromPoint(it->second), it->first);
      if (removed.ok()) {
        ASSERT_TRUE(removed.value());
        shadow.erase(it);
      } else {
        ++failed_ops;
      }
    }
    if (op % 50 != 49) continue;
    faults_.Disarm();
    ASSERT_EQ(tree.size(), shadow.size()) << "after op " << op;
    std::vector<std::uint32_t> expected;
    for (const auto& [id, p] : shadow) expected.push_back(id);
    ASSERT_EQ(AllIds(tree), expected) << "after op " << op;
    faults_.Arm();
  }
  faults_.Disarm();
  // The seeded schedule really exercised the abort path.
  EXPECT_GT(faults_.fault_stats().injected_corrupt_reads, 0u);
  EXPECT_GT(failed_ops, 0u);
  // COW churn must not leak pages: aborted ops free their fresh pages,
  // committed ops free their replaced ones.
  const std::size_t live_end = disk_.PageCount() - disk_.FreeCount();
  EXPECT_LT(live_end, live_start + 100);
}

}  // namespace
}  // namespace msq
