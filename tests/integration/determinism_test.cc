// Determinism and cross-module integration checks: identical
// configurations must produce bit-identical workloads and results (the
// reproducibility contract behind every benchmark number), and the
// simplification/landmark extensions must compose with the query stack.
#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "graph/simplify.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(DeterminismTest, WorkloadsIdenticalForSameConfig) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 77, 0.3, 1.5};
  config.object_density = 0.5;
  config.static_attr_dims = 2;
  Workload a(config);
  Workload b(config);

  ASSERT_EQ(a.objects().size(), b.objects().size());
  for (std::size_t i = 0; i < a.objects().size(); ++i) {
    EXPECT_EQ(a.objects()[i].edge, b.objects()[i].edge);
    EXPECT_DOUBLE_EQ(a.objects()[i].offset, b.objects()[i].offset);
  }
  ASSERT_EQ(a.static_attributes().size(), b.static_attributes().size());
  for (std::size_t i = 0; i < a.static_attributes().size(); ++i) {
    EXPECT_EQ(a.static_attributes()[i], b.static_attributes()[i]);
  }
}

TEST(DeterminismTest, QuerySamplingDeterministic) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 79, 0.0};
  Workload workload(config);
  const auto s1 = workload.SampleQuery(5, 42);
  const auto s2 = workload.SampleQuery(5, 42);
  const auto s3 = workload.SampleQuery(5, 43);
  ASSERT_EQ(s1.sources.size(), s2.sources.size());
  for (std::size_t i = 0; i < s1.sources.size(); ++i) {
    EXPECT_EQ(s1.sources[i], s2.sources[i]);
  }
  // Different seeds diverge (with overwhelming probability).
  bool differs = false;
  for (std::size_t i = 0; i < s1.sources.size(); ++i) {
    if (!(s1.sources[i] == s3.sources[i])) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(DeterminismTest, AlgorithmResultsStableAcrossRuns) {
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 83);
  const auto spec = workload->SampleQuery(4, 9);
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
    const auto r1 =
        RunSkylineQuery(algorithm, workload->dataset(), spec);
    const auto r2 =
        RunSkylineQuery(algorithm, workload->dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(r1), testing::SkylineIds(r2))
        << AlgorithmName(algorithm);
    // Deterministic candidate counts too.
    EXPECT_EQ(r1.stats.candidate_count, r2.stats.candidate_count)
        << AlgorithmName(algorithm);
  }
}

TEST(DeterminismTest, BufferStateDoesNotAffectResults) {
  // Warm vs cold caches change I/O counters, never answers.
  auto workload = testing::MakeRandomWorkload(300, 420, 0.5, 89);
  const auto spec = workload->SampleQuery(3, 3);
  workload->ResetBuffers();
  const auto cold =
      RunSkylineQuery(Algorithm::kLbc, workload->dataset(), spec);
  const auto warm =
      RunSkylineQuery(Algorithm::kLbc, workload->dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(cold), testing::SkylineIds(warm));
}

TEST(SimplifyIntegrationTest, QueriesOnSimplifiedNetworkAgree) {
  // Simplify a polyline-heavy network, re-snap the objects and query
  // points onto the contracted graph via surviving junctions, and verify
  // node-to-node skylines agree between the two representations when the
  // objects sit exactly on junctions.
  const RoadNetwork original = GenerateNetwork({.node_count = 500,
                                                .edge_count = 580,
                                                .seed = 97,
                                                .curvature = 0.0,
                                                .junction_edge_ratio = 1.7});
  const auto simplified = SimplifyDegree2Chains(original);

  // Choose object/query positions at surviving junctions; express each as
  // an offset-0 location on an incident edge in each network.
  auto junction_location = [](const RoadNetwork& network, NodeId node) {
    for (EdgeId e = 0; e < network.edge_count(); ++e) {
      const auto& edge = network.EdgeAt(e);
      if (edge.u == node) return Location{e, 0.0};
      if (edge.v == node) return Location{e, edge.length};
    }
    ADD_FAILURE() << "isolated node";
    return Location{0, 0.0};
  };

  std::vector<NodeId> junctions;
  for (NodeId v = 0; v < original.node_count() && junctions.size() < 14;
       ++v) {
    if (simplified.node_map[v] != kInvalidNode) junctions.push_back(v);
  }
  ASSERT_GE(junctions.size(), 14u);

  std::vector<Location> objects_orig, objects_simp;
  for (std::size_t i = 0; i < 10; ++i) {
    objects_orig.push_back(junction_location(original, junctions[i]));
    objects_simp.push_back(junction_location(
        simplified.network, simplified.node_map[junctions[i]]));
  }
  SkylineQuerySpec spec_orig, spec_simp;
  for (std::size_t i = 10; i < 13; ++i) {
    spec_orig.sources.push_back(junction_location(original, junctions[i]));
    spec_simp.sources.push_back(junction_location(
        simplified.network, simplified.node_map[junctions[i]]));
  }

  WorkloadConfig config;
  RoadNetwork original_copy = original;  // Workload takes ownership
  Workload workload_orig(config, std::move(original_copy), objects_orig);
  RoadNetwork simplified_copy = simplified.network;
  Workload workload_simp(config, std::move(simplified_copy), objects_simp);

  const auto sky_orig = testing::SkylineIds(RunSkylineQuery(
      Algorithm::kNaive, workload_orig.dataset(), spec_orig));
  const auto sky_simp = testing::SkylineIds(RunSkylineQuery(
      Algorithm::kNaive, workload_simp.dataset(), spec_simp));
  EXPECT_EQ(sky_orig, sky_simp);

  // The LBC answer agrees on both representations too.
  const auto lbc_simp = testing::SkylineIds(RunSkylineQuery(
      Algorithm::kLbc, workload_simp.dataset(), spec_simp));
  EXPECT_EQ(lbc_simp, sky_simp);
}

TEST(SimplifyIntegrationTest, SimplifiedNetworkCostsLess) {
  const RoadNetwork original = GenerateNetwork({.node_count = 3000,
                                                .edge_count = 3500,
                                                .seed = 101,
                                                .curvature = 0.0,
                                                .junction_edge_ratio = 1.7});
  auto simplified = SimplifyDegree2Chains(original);

  WorkloadConfig config;
  config.object_density = 0.5;
  RoadNetwork original_copy = original;
  Workload workload_orig(config, std::move(original_copy));
  Workload workload_simp(config, std::move(simplified.network));

  const auto spec_orig = workload_orig.SampleQuery(3, 1);
  const auto spec_simp = workload_simp.SampleQuery(3, 1);
  workload_orig.ResetBuffers();
  const auto r_orig = RunSkylineQuery(Algorithm::kLbc,
                                      workload_orig.dataset(), spec_orig);
  workload_simp.ResetBuffers();
  const auto r_simp = RunSkylineQuery(Algorithm::kLbc,
                                      workload_simp.dataset(), spec_simp);
  // Fewer nodes to settle on the contracted topology (different object
  // sets, so compare the infrastructure cost only).
  EXPECT_LT(r_simp.stats.settled_nodes, r_orig.stats.settled_nodes);
}

}  // namespace
}  // namespace msq
