// Dynamic world end to end: after an edge-weight update or object churn,
// warm (cached) queries are byte-identical to a cold cacheless run on the
// mutated world — the data-epoch stamp makes every pre-mutation cache
// entry unreachable — and the mutation orchestrators compose with the
// executor's exclusive write barrier and repeated relayouts without
// leaking storage.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_cache.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kCachedAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                           Algorithm::kLbc};

std::unique_ptr<Workload> DynamicWorkload(std::uint64_t seed = 11,
                                          std::size_t attr_dims = 0) {
  return testing::MakeRandomWorkload(220, 300, 1.0, seed, attr_dims);
}

// Full byte-identity: same objects in the same order with bitwise-equal
// distance vectors.
void ExpectSameSkyline(const SkylineResult& got, const SkylineResult& want,
                       const char* label) {
  ASSERT_TRUE(got.status.ok()) << label;
  ASSERT_TRUE(want.status.ok()) << label;
  ASSERT_EQ(got.skyline.size(), want.skyline.size()) << label;
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    EXPECT_EQ(got.skyline[i].object, want.skyline[i].object)
        << label << " entry " << i;
    EXPECT_EQ(got.skyline[i].vector, want.skyline[i].vector)
        << label << " entry " << i;
  }
}

// The oracle: a fresh cacheless run on the current (mutated) world.
SkylineResult ColdOracle(Workload* workload, Algorithm algorithm,
                         const SkylineQuerySpec& spec) {
  workload->ResetBuffers();
  return RunSkylineQuery(algorithm, workload->dataset(), spec);
}

TEST(DynamicWorldTest, WarmQueriesAfterEdgeUpdateMatchColdOracle) {
  for (const Algorithm algorithm : kCachedAlgorithms) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    auto workload = DynamicWorkload();
    const SkylineQuerySpec spec = workload->SampleQuery(3, 41);
    QueryCache cache;
    Dataset dataset = workload->dataset();
    dataset.cache = &cache;
    // Fill the cache, then prove it is warm.
    const SkylineResult cold = RunSkylineQuery(algorithm, dataset, spec);
    ASSERT_TRUE(cold.status.ok());
    ASSERT_FALSE(cold.skyline.empty());
    const SkylineResult warm = RunSkylineQuery(algorithm, dataset, spec);
    ExpectSameSkyline(warm, cold, "warm before mutation");

    // Lengthen the first query source's edge: every network distance
    // through it changes, so a stale cached answer would be visibly wrong.
    const EdgeId edge = spec.sources[0].edge;
    const Dist old_length = workload->network().EdgeAt(edge).length;
    const StatusOr<Dist> applied =
        workload->UpdateEdgeWeight(edge, old_length * 3.0);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();

    Dataset mutated = workload->dataset();
    mutated.cache = &cache;
    const SkylineResult warm_after =
        RunSkylineQuery(algorithm, mutated, spec);
    ExpectSameSkyline(warm_after, ColdOracle(workload.get(), algorithm, spec),
                      "warm after edge update");
    // And warm again on the mutated world: the refill is coherent too.
    Dataset refilled = workload->dataset();
    refilled.cache = &cache;
    ExpectSameSkyline(RunSkylineQuery(algorithm, refilled, spec), warm_after,
                      "second warm after edge update");
  }
}

TEST(DynamicWorldTest, WarmQueriesAfterObjectChurnMatchColdOracle) {
  for (const Algorithm algorithm : kCachedAlgorithms) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    auto workload = DynamicWorkload(23);
    const SkylineQuerySpec spec = workload->SampleQuery(2, 9);
    QueryCache cache;
    Dataset dataset = workload->dataset();
    dataset.cache = &cache;
    const SkylineResult before = RunSkylineQuery(algorithm, dataset, spec);
    ASSERT_TRUE(before.status.ok());
    ASSERT_FALSE(before.skyline.empty());

    // Insert an object right at a query source: network distance 0 to that
    // source, so it must join (or dominate into) the skyline.
    const StatusOr<ObjectId> inserted =
        workload->InsertObject(spec.sources[0]);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    Dataset after_insert = workload->dataset();
    after_insert.cache = &cache;
    const SkylineResult warm_insert =
        RunSkylineQuery(algorithm, after_insert, spec);
    ExpectSameSkyline(warm_insert,
                      ColdOracle(workload.get(), algorithm, spec),
                      "warm after insert");
    const auto finds_inserted = [&](const SkylineResult& result) {
      for (const SkylineEntry& entry : result.skyline) {
        if (entry.object == inserted.value()) return true;
      }
      return false;
    };
    EXPECT_TRUE(finds_inserted(warm_insert));

    // Delete a pre-existing skyline member; it must vanish from the warm
    // answer, not linger in a stale snapshot.
    const ObjectId victim = before.skyline[0].object;
    const StatusOr<bool> removed = workload->DeleteObject(victim);
    ASSERT_TRUE(removed.ok());
    EXPECT_TRUE(removed.value());
    Dataset after_delete = workload->dataset();
    after_delete.cache = &cache;
    const SkylineResult warm_delete =
        RunSkylineQuery(algorithm, after_delete, spec);
    ExpectSameSkyline(warm_delete,
                      ColdOracle(workload.get(), algorithm, spec),
                      "warm after delete");
    for (const SkylineEntry& entry : warm_delete.skyline) {
      EXPECT_NE(entry.object, victim);
    }
  }
}

TEST(DynamicWorldTest, NaiveSkylineExcludesTombstonedObjects) {
  // Naive scans the object table directly (no R-tree browse), so it needs
  // its own tombstone guard; static attributes keep the deleted row
  // allocated and would leak it into dominance if the guard slipped.
  auto workload = DynamicWorkload(31, /*attr_dims=*/2);
  const SkylineQuerySpec spec = workload->SampleQuery(2, 13);
  const SkylineResult before =
      RunSkylineQuery(Algorithm::kNaive, workload->dataset(), spec);
  ASSERT_TRUE(before.status.ok());
  ASSERT_FALSE(before.skyline.empty());
  const ObjectId victim = before.skyline.front().object;
  const StatusOr<bool> removed = workload->DeleteObject(victim);
  ASSERT_TRUE(removed.ok());
  ASSERT_TRUE(removed.value());
  const SkylineResult after =
      RunSkylineQuery(Algorithm::kNaive, workload->dataset(), spec);
  ASSERT_TRUE(after.status.ok());
  for (const SkylineEntry& entry : after.skyline) {
    EXPECT_NE(entry.object, victim);
  }
  // Deleting again is a clean no-op, and the answer is stable.
  const StatusOr<bool> again = workload->DeleteObject(victim);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());
  ExpectSameSkyline(RunSkylineQuery(Algorithm::kNaive, workload->dataset(),
                                    spec),
                    after, "after double delete");
}

// Mirror of the layout-epoch invalidation cases (query_cache_test.cc), but
// driven by real data-epoch bumps from Workload mutations: a Find under
// the post-mutation epoch misses AND drops the entry, and the old epoch
// cannot resurrect it.
TEST(DynamicWorldTest, DataEpochMismatchMissesAndDropsDistanceMemo) {
  auto workload = DynamicWorkload(47);
  QueryCache cache;
  const std::uint64_t epoch0 = workload->dataset().graph_pager->data_epoch();
  const Location source{3, 0.25};
  cache.StoreDistance(source, 7, 5.0, epoch0);
  ASSERT_TRUE(cache.FindDistance(source, 7, epoch0).has_value());

  const Dist length = workload->network().EdgeAt(0).length;
  ASSERT_TRUE(workload->UpdateEdgeWeight(0, length * 2.0).ok());
  const std::uint64_t epoch1 = workload->dataset().graph_pager->data_epoch();
  ASSERT_GT(epoch1, epoch0);

  EXPECT_FALSE(cache.FindDistance(source, 7, epoch1).has_value());
  // The mismatch dropped the entry: the original epoch finds nothing.
  EXPECT_FALSE(cache.FindDistance(source, 7, epoch0).has_value());
  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.memo_misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(DynamicWorldTest, DataEpochMismatchMissesAndDropsWavefront) {
  auto workload = DynamicWorkload(53);
  const SkylineQuerySpec spec = workload->SampleQuery(2, 29);
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  const std::uint64_t epoch0 = dataset.graph_pager->data_epoch();
  // A CE run populates the wavefront tier for its sources.
  ASSERT_TRUE(RunSkylineQuery(Algorithm::kCe, dataset, spec).status.ok());
  ASSERT_NE(cache.FindWavefront(spec.sources[0], epoch0), nullptr);

  ASSERT_TRUE(workload->InsertObject(Location{1, 0.0}).ok());
  const std::uint64_t epoch1 = workload->dataset().graph_pager->data_epoch();
  ASSERT_GT(epoch1, epoch0);

  // Post-mutation epoch: miss and drop. Old epoch: gone for good.
  EXPECT_EQ(cache.FindWavefront(spec.sources[0], epoch1), nullptr);
  EXPECT_EQ(cache.FindWavefront(spec.sources[0], epoch0), nullptr);
}

TEST(DynamicWorldTest, FailedMutationStillBumpsEpochAndStaysCoherent) {
  // A mutation that dies on a storage fault must not leave the cache
  // trusting pre-call entries: the orchestrator bumps the epoch on every
  // attempt, converges the stack, and the world it leaves behind answers
  // like a fresh build.
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 300, 59, /*curvature=*/0.0};
  config.object_density = 1.0;
  config.object_seed = 59 * 31 + 7;
  config.fault_injection = FaultInjectionConfig{};  // disarmed; scripted only
  auto workload = std::make_unique<Workload>(config);
  const SkylineQuerySpec spec = workload->SampleQuery(2, 3);
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  const SkylineResult before =
      RunSkylineQuery(Algorithm::kLbc, dataset, spec);
  ASSERT_TRUE(before.status.ok());

  const std::uint64_t epoch0 = workload->dataset().graph_pager->data_epoch();
  // Drop the index pool so the insert's first tree read is a disk read,
  // then script that read to fail mid-mutation.
  ASSERT_TRUE(workload->dataset().index_buffer->Clear().ok());
  workload->index_faults()->FailNextReads(1, StatusCode::kIoError);
  const StatusOr<ObjectId> failed =
      workload->InsertObject(spec.sources[0]);
  EXPECT_FALSE(failed.ok());
  EXPECT_GT(workload->dataset().graph_pager->data_epoch(), epoch0);

  Dataset after = workload->dataset();
  after.cache = &cache;
  ExpectSameSkyline(RunSkylineQuery(Algorithm::kLbc, after, spec),
                    ColdOracle(workload.get(), Algorithm::kLbc, spec),
                    "warm after failed mutation");
  // The failed insert left no object behind.
  for (const SkylineEntry& entry :
       ColdOracle(workload.get(), Algorithm::kLbc, spec).skyline) {
    EXPECT_LT(entry.object, workload->objects().size());
  }
}

TEST(DynamicWorldTest, TruncatedWarmPrefixAfterMutationIsTrueSubset) {
  // A page-budget-truncated warm run on the mutated world must return a
  // subset of the true (mutated-world) skyline with bitwise-equal
  // vectors — never entries computed against the pre-mutation world.
  auto workload = DynamicWorkload(67);
  const SkylineQuerySpec spec = workload->SampleQuery(3, 17);
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  ASSERT_TRUE(RunSkylineQuery(Algorithm::kCe, dataset, spec).status.ok());

  const Dist length = workload->network().EdgeAt(spec.sources[0].edge).length;
  ASSERT_TRUE(
      workload->UpdateEdgeWeight(spec.sources[0].edge, length * 4.0).ok());
  const SkylineResult oracle =
      ColdOracle(workload.get(), Algorithm::kCe, spec);
  ASSERT_TRUE(oracle.status.ok());

  Dataset mutated = workload->dataset();
  mutated.cache = &cache;
  SkylineQuerySpec limited = spec;
  limited.limits.max_page_accesses = 40;
  const SkylineResult truncated =
      RunSkylineQuery(Algorithm::kCe, mutated, limited);
  ASSERT_TRUE(truncated.status.ok());
  ASSERT_TRUE(truncated.truncated);
  EXPECT_EQ(truncated.truncation_reason, StatusCode::kResourceExhausted);
  EXPECT_LE(truncated.skyline.size(), oracle.skyline.size());
  for (const SkylineEntry& entry : truncated.skyline) {
    const auto it = std::find_if(
        oracle.skyline.begin(), oracle.skyline.end(),
        [&](const SkylineEntry& want) {
          return want.object == entry.object;
        });
    ASSERT_NE(it, oracle.skyline.end())
        << "truncated entry " << entry.object
        << " is not in the mutated-world skyline";
    EXPECT_EQ(entry.vector, it->vector);
  }
}

TEST(DynamicWorldTest, RepeatedRelayoutDoesNotLeakPages) {
  // Relayout frees the previous layout's pages back to the disk free list;
  // cycling layouts must hold live-page usage flat, not stack orphaned
  // copies of the adjacency store.
  auto workload = DynamicWorkload(71);
  const SkylineQuerySpec spec = workload->SampleQuery(2, 5);
  const SkylineResult baseline =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(baseline.status.ok());

  DiskManager* disk = workload->dataset().graph_buffer->disk();
  workload->Relayout(GraphLayout::kHilbertCsr);
  const std::size_t live_after_first = disk->PageCount() - disk->FreeCount();
  const GraphLayout cycle[] = {GraphLayout::kSeed, GraphLayout::kHilbert,
                               GraphLayout::kHilbertCsr};
  for (int round = 0; round < 3; ++round) {
    for (const GraphLayout layout : cycle) {
      workload->Relayout(layout);
    }
  }
  workload->Relayout(GraphLayout::kHilbertCsr);
  const std::size_t live_after_cycles =
      disk->PageCount() - disk->FreeCount();
  EXPECT_EQ(live_after_cycles, live_after_first);
  // Results are layout-invariant throughout.
  ExpectSameSkyline(RunSkylineQuery(Algorithm::kCe, workload->dataset(),
                                    spec),
                    baseline, "after relayout cycles");
}

TEST(DynamicWorldTest, ExclusiveBarrierSerializesMutationsWithQueries) {
  // The serving composition in miniature: queries stream through the
  // executor while mutations run under SubmitExclusive. Every future
  // resolves, and the post-mutation warm answer equals the cold oracle.
  auto workload = DynamicWorkload(83);
  const SkylineQuerySpec spec = workload->SampleQuery(2, 7);
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  QueryExecutor executor(dataset, /*workers=*/4);

  auto enqueue_queries = [&](std::size_t count) {
    std::vector<std::future<SkylineResult>> futures;
    for (std::size_t i = 0; i < count; ++i) {
      QueryRequest request;
      request.algorithm = kCachedAlgorithms[i % 3];
      request.spec = workload->SampleQuery(2, 100 + i);
      futures.push_back(executor.Submit(std::move(request)));
    }
    return futures;
  };

  std::vector<std::future<SkylineResult>> wave1 = enqueue_queries(8);
  const EdgeId edge = spec.sources[0].edge;
  std::future<Status> update = executor.SubmitExclusive([&] {
    const Dist length = workload->network().EdgeAt(edge).length;
    return workload->UpdateEdgeWeight(edge, length * 2.5).status();
  });
  std::future<Status> insert = executor.SubmitExclusive([&] {
    return workload->InsertObject(spec.sources[1]).status();
  });
  std::vector<std::future<SkylineResult>> wave2 = enqueue_queries(8);

  for (std::future<SkylineResult>& f : wave1) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_TRUE(update.get().ok());
  EXPECT_TRUE(insert.get().ok());
  for (std::future<SkylineResult>& f : wave2) {
    EXPECT_TRUE(f.get().status.ok());
  }
  executor.Quiesce();

  Dataset mutated = workload->dataset();
  mutated.cache = &cache;
  ExpectSameSkyline(RunSkylineQuery(Algorithm::kLbc, mutated, spec),
                    ColdOracle(workload.get(), Algorithm::kLbc, spec),
                    "warm after barrier mutations");
}

}  // namespace
}  // namespace msq
