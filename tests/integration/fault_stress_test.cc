// Storage fault stress suite: CE, EDC, and LBC on a file-backed workload
// under seeded randomized fault schedules. The acceptance bar per run is
// strict — the result is identical to the fault-free reference, or the
// query fails with a clean typed storage error. Never a crash, never a
// wrong skyline.
#include <sys/stat.h>

#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};
// 70 schedules x 3 algorithms = 210 fault-injected runs.
constexpr std::uint64_t kScheduleCount = 70;

WorkloadConfig BaseConfig(const std::string& storage_dir) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  config.storage_dir = storage_dir;
  // Small pools force real disk traffic, so fault schedules actually bite.
  config.graph_buffer_frames = 8;
  config.index_buffer_frames = 16;
  return config;
}

bool IsStorageError(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError ||
         code == StatusCode::kCorruption;
}

TEST(FaultStressTest, CorrectResultOrCleanErrorUnderRandomFaults) {
  const std::string dir = ::testing::TempDir() + "/msq_fault_stress";
  ::mkdir(dir.c_str(), 0755);

  // Fault-free reference skylines, from the identical file-backed stack.
  std::map<Algorithm, std::vector<ObjectId>> reference;
  SkylineQuerySpec spec;
  {
    Workload clean(BaseConfig(dir));
    spec = clean.SampleQuery(3, 9);
    for (const Algorithm algorithm : kAlgorithms) {
      const auto result = RunSkylineQuery(algorithm, clean.dataset(), spec);
      ASSERT_TRUE(result.status.ok()) << AlgorithmName(algorithm);
      reference[algorithm] = testing::SkylineIds(result);
    }
    ASSERT_FALSE(reference[Algorithm::kCe].empty());
  }

  std::uint64_t clean_runs = 0, failed_runs = 0, injected_total = 0;
  for (std::uint64_t schedule = 1; schedule <= kScheduleCount; ++schedule) {
    WorkloadConfig config = BaseConfig(dir);
    FaultInjectionConfig faults;
    faults.seed = schedule;
    // Mostly-transient mix: retries absorb many faults (identical-result
    // runs), the rest surface as typed errors.
    faults.transient_read_rate = 0.01;
    faults.persistent_read_rate = 0.0015;
    faults.corrupt_read_rate = 0.0015;
    config.fault_injection = faults;
    Workload workload(config);  // built with the decorators disarmed

    for (const Algorithm algorithm : kAlgorithms) {
      workload.ResetBuffers();
      workload.graph_faults()->Arm();
      workload.index_faults()->Arm();
      const auto result = RunSkylineQuery(algorithm, workload.dataset(), spec);
      workload.graph_faults()->Disarm();
      workload.index_faults()->Disarm();

      if (result.status.ok()) {
        EXPECT_FALSE(result.truncated);
        EXPECT_EQ(testing::SkylineIds(result), reference[algorithm])
            << AlgorithmName(algorithm) << " schedule " << schedule;
        ++clean_runs;
      } else {
        EXPECT_TRUE(IsStorageError(result.status.code()))
            << AlgorithmName(algorithm) << " schedule " << schedule << ": "
            << result.status.ToString();
        EXPECT_TRUE(result.skyline.empty());
        ++failed_runs;
      }
    }
    injected_total += workload.graph_faults()->fault_stats().total() +
                      workload.index_faults()->fault_stats().total();
  }

  // The sweep must genuinely exercise both outcomes, or the rates are
  // mis-tuned and the suite is vacuous.
  EXPECT_GT(injected_total, 0u);
  EXPECT_GT(clean_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
  EXPECT_EQ(clean_runs + failed_runs,
            kScheduleCount * std::size(kAlgorithms));

  std::remove((dir + "/graph.pages").c_str());
  std::remove((dir + "/index.pages").c_str());
  ::rmdir(dir.c_str());
}

// Faults during a guarded query must not confuse truncation with failure:
// a storage error beats the budget flag, and a survivable schedule still
// honors the budget contract.
TEST(FaultStressTest, GuardrailsAndFaultsCompose) {
  const std::string dir = ::testing::TempDir() + "/msq_fault_guard";
  ::mkdir(dir.c_str(), 0755);

  WorkloadConfig config = BaseConfig(dir);
  FaultInjectionConfig faults;
  faults.seed = 3;
  faults.transient_read_rate = 0.01;
  config.fault_injection = faults;
  Workload workload(config);
  const auto spec_base = workload.SampleQuery(3, 9);

  for (std::uint64_t schedule = 1; schedule <= 20; ++schedule) {
    SkylineQuerySpec spec = spec_base;
    spec.limits.max_page_accesses = 50;
    workload.ResetBuffers();
    workload.graph_faults()->Arm();
    workload.index_faults()->Arm();
    const auto result =
        RunSkylineQuery(Algorithm::kCe, workload.dataset(), spec);
    workload.graph_faults()->Disarm();
    workload.index_faults()->Disarm();

    if (result.status.ok()) {
      // Completed or truncated cleanly under the budget.
      if (result.truncated) {
        EXPECT_EQ(result.truncation_reason, StatusCode::kResourceExhausted);
      }
    } else {
      EXPECT_TRUE(IsStorageError(result.status.code()))
          << result.status.ToString();
      EXPECT_TRUE(result.skyline.empty());
    }
  }

  std::remove((dir + "/graph.pages").c_str());
  std::remove((dir + "/index.pages").c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace msq
