// File-backed workload storage: the same query stack running on page
// files instead of memory, exercising FileDiskManager through the full
// algorithm paths.
#include <cstdio>
#include <string>
#include <sys/stat.h>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

std::string MakeStorageDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveStorage(const std::string& dir) {
  std::remove((dir + "/graph.pages").c_str());
  std::remove((dir + "/index.pages").c_str());
  ::rmdir(dir.c_str());
}

TEST(FileBackedWorkloadTest, ResultsIdenticalToInMemory) {
  const std::string dir = MakeStorageDir("msq_pages_identical");
  WorkloadConfig config;
  config.network = NetworkGenConfig{400, 540, 7, 0.0};
  config.object_density = 0.5;

  Workload in_memory(config);
  WorkloadConfig file_config = config;
  file_config.storage_dir = dir;
  Workload file_backed(file_config);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto spec_mem = in_memory.SampleQuery(3, seed);
    const auto spec_file = file_backed.SampleQuery(3, seed);
    for (const Algorithm algorithm :
         {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
      const auto mem =
          RunSkylineQuery(algorithm, in_memory.dataset(), spec_mem);
      const auto file =
          RunSkylineQuery(algorithm, file_backed.dataset(), spec_file);
      EXPECT_EQ(testing::SkylineIds(file), testing::SkylineIds(mem))
          << AlgorithmName(algorithm) << " seed " << seed;
    }
  }
  RemoveStorage(dir);
}

TEST(FileBackedWorkloadTest, PageFilesCreatedAndSized) {
  const std::string dir = MakeStorageDir("msq_pages_sized");
  WorkloadConfig config;
  config.network = NetworkGenConfig{300, 400, 9, 0.0};
  config.storage_dir = dir;
  Workload workload(config);

  struct ::stat graph_stat{}, index_stat{};
  ASSERT_EQ(::stat((dir + "/graph.pages").c_str(), &graph_stat), 0);
  ASSERT_EQ(::stat((dir + "/index.pages").c_str(), &index_stat), 0);
  EXPECT_GT(graph_stat.st_size, 0);
  EXPECT_GT(index_stat.st_size, 0);
  // Each on-disk slot is a payload plus its integrity trailer.
  const long slot = static_cast<long>(FileDiskManager::kSlotSize);
  EXPECT_EQ(graph_stat.st_size % slot, 0);
  EXPECT_EQ(index_stat.st_size % slot, 0);
  RemoveStorage(dir);
}

TEST(FileBackedWorkloadTest, IoCountersTrackFileReads) {
  const std::string dir = MakeStorageDir("msq_pages_io");
  WorkloadConfig config;
  config.network = NetworkGenConfig{500, 680, 11, 0.0};
  config.storage_dir = dir;
  config.graph_buffer_frames = 16;  // force real file traffic
  Workload workload(config);

  workload.ResetBuffers();
  const auto spec = workload.SampleQuery(3, 2);
  const auto result =
      RunSkylineQuery(Algorithm::kCe, workload.dataset(), spec);
  EXPECT_GT(result.stats.network_pages, 0u);
  EXPECT_EQ(workload.graph_buffer().stats().misses,
            workload.graph_buffer().disk()->reads());
  RemoveStorage(dir);
}

}  // namespace
}  // namespace msq
