// Adversarial randomized end-to-end suite: many small workloads designed
// to hit the corner cases measure-zero arguments sweep away — exact
// distance ties (grid networks), co-located objects, objects at edge
// endpoints (offset 0 / length), query points placed exactly on objects,
// and duplicate locations. Every algorithm must agree with the oracle on
// every instance.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/constrained.h"
#include "core/skyband.h"
#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

// Builds an adversarial object set: random offsets plus endpoint hits,
// duplicates, and co-located pairs.
std::vector<Location> AdversarialObjects(const RoadNetwork& network,
                                         std::size_t count, Rng& rng) {
  std::vector<Location> objects;
  objects.reserve(count);
  while (objects.size() < count) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.NextBounded(network.edge_count()));
    const Dist length = network.EdgeAt(edge).length;
    switch (rng.NextBounded(6)) {
      case 0:
        objects.push_back(Location{edge, 0.0});  // at endpoint u
        break;
      case 1:
        objects.push_back(Location{edge, length});  // at endpoint v
        break;
      case 2:
        objects.push_back(Location{edge, length * 0.5});  // midpoint (ties)
        break;
      case 3:
        if (!objects.empty()) {
          // Exact duplicate of an earlier object.
          objects.push_back(objects[rng.NextBounded(objects.size())]);
          break;
        }
        [[fallthrough]];
      default:
        objects.push_back(Location{edge, rng.NextDouble() * length});
        break;
    }
  }
  return objects;
}

// Query points: mixture of object positions (distance-zero cases) and
// random locations.
SkylineQuerySpec AdversarialQueries(const RoadNetwork& network,
                                    const std::vector<Location>& objects,
                                    std::size_t count, Rng& rng) {
  SkylineQuerySpec spec;
  while (spec.sources.size() < count) {
    if (!objects.empty() && rng.NextBounded(3) == 0) {
      spec.sources.push_back(objects[rng.NextBounded(objects.size())]);
    } else {
      const EdgeId edge =
          static_cast<EdgeId>(rng.NextBounded(network.edge_count()));
      spec.sources.push_back(
          Location{edge, rng.NextDouble() * network.EdgeAt(edge).length});
    }
  }
  return spec;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, AllAlgorithmsMatchOracleOnAdversarialInstances) {
  Rng rng(GetParam() * 7919 + 13);
  for (int instance = 0; instance < 12; ++instance) {
    // Alternate between tie-heavy grids and random networks.
    RoadNetwork network =
        (instance % 2 == 0)
            ? testing::MakeGridNetwork(3 + rng.NextBounded(4))
            : GenerateNetwork(
                  {.node_count = 20 + rng.NextBounded(60),
                   .edge_count = 25 + rng.NextBounded(90),
                   .seed = rng.Next(),
                   .curvature = rng.NextDouble()});
    const std::size_t object_count = 1 + rng.NextBounded(25);
    auto objects = AdversarialObjects(network, object_count, rng);
    const auto spec =
        AdversarialQueries(network, objects, 1 + rng.NextBounded(4), rng);

    auto workload = testing::MakeWorkload(std::move(network),
                                          std::move(objects));
    const auto expected = testing::SkylineIds(
        RunSkylineQuery(Algorithm::kNaive, workload->dataset(), spec));
    for (const Algorithm algorithm :
         {Algorithm::kCe, Algorithm::kEdc, Algorithm::kEdcIncremental,
          Algorithm::kLbc, Algorithm::kLbcNoPlb}) {
      const auto got = testing::SkylineIds(
          RunSkylineQuery(algorithm, workload->dataset(), spec));
      ASSERT_EQ(got, expected)
          << AlgorithmName(algorithm) << " diverged on instance "
          << instance << " of seed " << GetParam();
    }
    // The alternation extension as well.
    const auto alt = testing::SkylineIds(RunLbc(
        workload->dataset(), spec, LbcOptions{.alternate_sources = true}));
    ASSERT_EQ(alt, expected) << "lbc-alt diverged on instance " << instance;
  }
}

TEST_P(FuzzTest, VariantsConsistentOnAdversarialInstances) {
  Rng rng(GetParam() * 104729 + 7);
  for (int instance = 0; instance < 6; ++instance) {
    RoadNetwork network = GenerateNetwork(
        {.node_count = 30 + rng.NextBounded(50),
         .edge_count = 40 + rng.NextBounded(60),
         .seed = rng.Next()});
    auto objects = AdversarialObjects(network, 1 + rng.NextBounded(20),
                                      rng);
    const auto spec =
        AdversarialQueries(network, objects, 1 + rng.NextBounded(3), rng);
    auto workload = testing::MakeWorkload(std::move(network),
                                          std::move(objects));

    // Skyline == 1-skyband == constrained skyline at infinite radius.
    const auto skyline = testing::SkylineIds(
        RunSkylineQuery(Algorithm::kNaive, workload->dataset(), spec));
    const auto band =
        RunSkybandLbc(workload->dataset(), spec, 1);
    std::vector<ObjectId> band_ids;
    for (const auto& entry : band.entries) band_ids.push_back(entry.object);
    std::sort(band_ids.begin(), band_ids.end());
    ASSERT_EQ(band_ids, skyline) << "skyband k=1 diverged";

    const auto constrained = testing::SkylineIds(
        RunConstrainedSkylineLbc(workload->dataset(), spec, 1e9));
    ASSERT_EQ(constrained, skyline) << "constrained r=inf diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace msq
