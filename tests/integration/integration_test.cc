// End-to-end scenarios across the full stack: generated network, paged
// storage, indexes, middle layer, all algorithms, metrics.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

TEST(IntegrationTest, ScaledCaWorkloadAllAlgorithmsAgree) {
  WorkloadConfig config;
  config.network = PaperNetworkConfig(NetworkClass::kCA, /*scale=*/0.2, 5);
  config.object_density = 0.5;
  Workload workload(config);
  const auto spec = workload.SampleQuery(4, 3);

  const auto expected = testing::SkylineIds(
      RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec));
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
    workload.ResetBuffers();
    const auto got = testing::SkylineIds(
        RunSkylineQuery(algorithm, workload.dataset(), spec));
    EXPECT_EQ(got, expected) << AlgorithmName(algorithm);
  }
}

TEST(IntegrationTest, MetricsDifferAcrossAlgorithms) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{1500, 2000, 8, 0.0};
  config.object_density = 0.5;
  Workload workload(config);
  const auto spec = workload.SampleQuery(4, 4);

  workload.ResetBuffers();
  const auto ce = RunSkylineQuery(Algorithm::kCe, workload.dataset(), spec);
  workload.ResetBuffers();
  const auto lbc =
      RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);

  // LBC's headline property: far less network access than CE.
  EXPECT_LT(lbc.stats.settled_nodes, ce.stats.settled_nodes);
  EXPECT_LE(lbc.stats.network_pages, ce.stats.network_pages);
}

TEST(IntegrationTest, QueriesRunBackToBackOnOneWorkload) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{400, 560, 10, 0.0};
  Workload workload(config);
  std::vector<ObjectId> last;
  for (std::uint64_t q = 0; q < 5; ++q) {
    const auto spec = workload.SampleQuery(3, q);
    const auto naive =
        RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
    const auto lbc =
        RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(lbc), testing::SkylineIds(naive))
        << "query " << q;
  }
}

TEST(IntegrationTest, WarmBufferReducesMisses) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{800, 1100, 12, 0.0};
  Workload workload(config);
  const auto spec = workload.SampleQuery(3, 1);

  workload.ResetBuffers();
  const auto cold = RunSkylineQuery(Algorithm::kLbc, workload.dataset(),
                                    spec);
  // No reset: second run reuses pooled pages.
  const auto warm = RunSkylineQuery(Algorithm::kLbc, workload.dataset(),
                                    spec);
  EXPECT_LE(warm.stats.network_pages, cold.stats.network_pages);
}

TEST(IntegrationTest, FileBackedNetworkRoundTrip) {
  // Save a generated network, reload it, and run a query on the reloaded
  // copy — the external-data path a DCW user would take.
  const RoadNetwork original = GenerateNetwork({.node_count = 300,
                                                .edge_count = 420,
                                                .seed = 31});
  const std::string path = ::testing::TempDir() + "/msq_integration.txt";
  ASSERT_TRUE(original.SaveToEdgeListFile(path));
  std::string error;
  auto loaded = RoadNetwork::LoadFromEdgeListFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  WorkloadConfig config;
  config.object_density = 0.5;
  Workload workload(config, std::move(*loaded));
  const auto spec = workload.SampleQuery(3, 2);
  const auto naive =
      RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
  const auto lbc =
      RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);
  EXPECT_EQ(testing::SkylineIds(lbc), testing::SkylineIds(naive));
  std::remove(path.c_str());
}

TEST(IntegrationTest, SmallBufferStillCorrect) {
  // Thrashing-small buffer pools change I/O counts, never results.
  WorkloadConfig config;
  config.network = NetworkGenConfig{500, 700, 17, 0.0};
  config.graph_buffer_frames = 2;
  config.index_buffer_frames = 8;
  Workload workload(config);
  const auto spec = workload.SampleQuery(3, 3);
  const auto naive =
      RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
  for (const Algorithm algorithm :
       {Algorithm::kCe, Algorithm::kEdc, Algorithm::kLbc}) {
    const auto got =
        RunSkylineQuery(algorithm, workload.dataset(), spec);
    EXPECT_EQ(testing::SkylineIds(got), testing::SkylineIds(naive))
        << AlgorithmName(algorithm);
  }
}

TEST(IntegrationTest, AlgorithmNamesRoundTrip) {
  for (const Algorithm a :
       {Algorithm::kNaive, Algorithm::kCe, Algorithm::kEdc,
        Algorithm::kEdcIncremental, Algorithm::kLbc,
        Algorithm::kLbcNoPlb}) {
    Algorithm parsed;
    ASSERT_TRUE(ParseAlgorithm(AlgorithmName(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
  Algorithm parsed;
  EXPECT_FALSE(ParseAlgorithm("nonsense", &parsed));
}

}  // namespace
}  // namespace msq
