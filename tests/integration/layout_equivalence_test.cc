// Oracle equivalence of the graph storage layouts (DESIGN.md §15): the
// seed (Morton + row pages), Hilbert, and Hilbert+CSR layouts must give
// byte-identical skylines for every algorithm — including truncated
// prefixes under QueryLimits and parallel-source runs — and a Relayout's
// layout-epoch bump must provably cut stale QueryCache entries off.
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_cache.h"
#include "core/skyline_query.h"
#include "exec/task_pool.h"
#include "gen/workloads.h"

namespace msq {
namespace {

constexpr GraphLayout kLayouts[] = {GraphLayout::kSeed, GraphLayout::kHilbert,
                                    GraphLayout::kHilbertCsr};

std::unique_ptr<Workload> LayoutWorkload(GraphLayout layout,
                                         std::uint64_t seed = 19) {
  WorkloadConfig config;
  config.network = NetworkGenConfig{280, 360, seed, 0.4};
  config.graph_layout = layout;
  config.object_density = 0.8;
  return std::make_unique<Workload>(config);
}

void ExpectByteIdentical(const SkylineResult& got, const SkylineResult& want,
                         const std::string& label) {
  ASSERT_EQ(got.status.ok(), want.status.ok()) << label;
  EXPECT_EQ(got.truncated, want.truncated) << label;
  ASSERT_EQ(got.skyline.size(), want.skyline.size()) << label;
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    EXPECT_EQ(got.skyline[i].object, want.skyline[i].object)
        << label << " entry " << i;
    EXPECT_EQ(got.skyline[i].vector, want.skyline[i].vector)
        << label << " entry " << i;
  }
}

// Node relabeling only renumbers nodes; objects and queries are edge-keyed,
// so every algorithm must produce the same bytes on every layout.
TEST(LayoutEquivalenceTest, AllAlgorithmsByteIdenticalAcrossLayouts) {
  auto seed_workload = LayoutWorkload(GraphLayout::kSeed);
  const Algorithm algorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                  Algorithm::kEdcIncremental, Algorithm::kLbc};
  for (std::uint64_t qseed : {40u, 41u}) {
    const SkylineQuerySpec spec = seed_workload->SampleQuery(3, qseed);
    std::unordered_map<int, SkylineResult> baseline;
    for (const Algorithm algo : algorithms) {
      seed_workload->ResetBuffers();
      baseline[static_cast<int>(algo)] =
          RunSkylineQuery(algo, seed_workload->dataset(), spec);
      ASSERT_TRUE(baseline[static_cast<int>(algo)].status.ok());
    }
    for (const GraphLayout layout :
         {GraphLayout::kHilbert, GraphLayout::kHilbertCsr}) {
      auto workload = LayoutWorkload(layout);
      // Edge-keyed sampling: the same seed gives the same query.
      const SkylineQuerySpec relaid = workload->SampleQuery(3, qseed);
      ASSERT_EQ(relaid.sources.size(), spec.sources.size());
      for (const Algorithm algo : algorithms) {
        workload->ResetBuffers();
        const SkylineResult got =
            RunSkylineQuery(algo, workload->dataset(), relaid);
        ExpectByteIdentical(
            got, baseline[static_cast<int>(algo)],
            GraphLayoutName(layout) + "/" +
                std::string(AlgorithmName(algo)) + " seed " +
                std::to_string(qseed));
      }
    }
  }
}

// Page ACCESSES (buffer lookups) are a function of the traversal, not the
// page packing, so a max_page_accesses budget cuts every layout off at the
// same point: truncated prefixes are byte-identical across layouts too,
// and each is a subset of its own full skyline.
TEST(LayoutEquivalenceTest, TruncatedPrefixByteIdenticalAcrossLayouts) {
  auto seed_workload = LayoutWorkload(GraphLayout::kSeed);
  SkylineQuerySpec spec = seed_workload->SampleQuery(3, 50);
  for (const Algorithm algo : {Algorithm::kCe, Algorithm::kLbc}) {
    seed_workload->ResetBuffers();
    const SkylineResult full =
        RunSkylineQuery(algo, seed_workload->dataset(), spec);
    ASSERT_TRUE(full.status.ok());
    ASSERT_FALSE(full.skyline.empty());
    std::unordered_map<ObjectId, DistVector> full_set;
    for (const SkylineEntry& e : full.skyline) full_set[e.object] = e.vector;

    SkylineQuerySpec limited = spec;
    limited.limits.max_page_accesses = 60;
    std::vector<SkylineResult> truncated;
    for (const GraphLayout layout : kLayouts) {
      auto workload = LayoutWorkload(layout);
      workload->ResetBuffers();
      truncated.push_back(
          RunSkylineQuery(algo, workload->dataset(), limited));
      const SkylineResult& got = truncated.back();
      ASSERT_TRUE(got.status.ok()) << GraphLayoutName(layout);
      EXPECT_TRUE(got.truncated) << GraphLayoutName(layout);
      EXPECT_LT(got.skyline.size(), full.skyline.size());
      // Confirmed prefix: every truncated entry is a true skyline point.
      for (const SkylineEntry& e : got.skyline) {
        const auto it = full_set.find(e.object);
        ASSERT_NE(it, full_set.end()) << GraphLayoutName(layout);
        EXPECT_EQ(it->second, e.vector) << GraphLayoutName(layout);
      }
    }
    for (std::size_t i = 1; i < truncated.size(); ++i) {
      ExpectByteIdentical(truncated[i], truncated[0],
                          "truncated " + GraphLayoutName(kLayouts[i]));
    }
  }
}

// The parallel-source path must stay byte-identical on every layout, so
// the layout ablation's fourth point measures the same query.
TEST(LayoutEquivalenceTest, ParallelSourcesByteIdenticalAcrossLayouts) {
  auto seed_workload = LayoutWorkload(GraphLayout::kSeed);
  const SkylineQuerySpec spec = seed_workload->SampleQuery(4, 60);
  seed_workload->ResetBuffers();
  const SkylineResult baseline =
      RunSkylineQuery(Algorithm::kCe, seed_workload->dataset(), spec);
  ASSERT_TRUE(baseline.status.ok());
  TaskPool pool(2);
  for (const GraphLayout layout : kLayouts) {
    auto workload = LayoutWorkload(layout);
    SkylineQuerySpec parallel = workload->SampleQuery(4, 60);
    parallel.runner = &pool;
    workload->ResetBuffers();
    const SkylineResult got =
        RunSkylineQuery(Algorithm::kCe, workload->dataset(), parallel);
    ExpectByteIdentical(got, baseline,
                        "parallel " + GraphLayoutName(layout));
  }
}

// The acceptance-criteria regression: a Relayout bumps the pager's
// layout_epoch, which must make every cache entry built under the old
// epoch unreachable — a stale wavefront snapshot keyed to the old node
// numbering must never be resumed.
TEST(LayoutEquivalenceTest, RelayoutEpochBumpInvalidatesWarmCache) {
  auto workload = LayoutWorkload(GraphLayout::kSeed);
  const SkylineQuerySpec spec = workload->SampleQuery(3, 70);

  workload->ResetBuffers();
  const SkylineResult baseline =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(baseline.status.ok());

  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  workload->ResetBuffers();
  const SkylineResult cold = RunSkylineQuery(Algorithm::kCe, dataset, spec);
  ExpectByteIdentical(cold, baseline, "cold cached");
  EXPECT_GT(cold.stats.cache_wavefront_misses + cold.stats.cache_memo_misses,
            0u);

  workload->ResetBuffers();
  const SkylineResult warm = RunSkylineQuery(Algorithm::kCe, dataset, spec);
  ExpectByteIdentical(warm, baseline, "warm cached");
  const std::uint64_t warm_hits =
      warm.stats.cache_wavefront_hits + warm.stats.cache_memo_hits;
  EXPECT_GT(warm_hits, 0u);

  // Same workload, same cache, new layout: the epoch bump alone must make
  // every prior entry unreachable.
  workload->Relayout(GraphLayout::kHilbertCsr);
  Dataset relaid = workload->dataset();
  relaid.cache = &cache;
  workload->ResetBuffers();
  const SkylineResult after = RunSkylineQuery(Algorithm::kCe, relaid, spec);
  ExpectByteIdentical(after, baseline, "post-relayout");
  EXPECT_EQ(after.stats.cache_wavefront_hits, 0u);
  EXPECT_EQ(after.stats.cache_memo_hits, 0u);
  EXPECT_GT(
      after.stats.cache_wavefront_misses + after.stats.cache_memo_misses, 0u);

  // Entries written under the NEW epoch are live again — invalidation was
  // epoch-targeted, not a blanket cache wipe.
  workload->ResetBuffers();
  const SkylineResult rewarm = RunSkylineQuery(Algorithm::kCe, relaid, spec);
  ExpectByteIdentical(rewarm, baseline, "post-relayout warm");
  EXPECT_GT(rewarm.stats.cache_wavefront_hits + rewarm.stats.cache_memo_hits,
            0u);
}

}  // namespace
}  // namespace msq
