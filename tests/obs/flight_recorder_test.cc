// obs::FlightRecorder: sequence assignment and completion order, ring
// wrap-around retention, and the 8-writer hammer (suite name matches the
// tools/check.sh tsan -R filter): unique sequences, no torn payloads, and
// per-thread payload conservation under concurrent wrap.
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"

namespace msq::obs {
namespace {

FlightRecord MakeRecord(std::uint64_t tag) {
  FlightRecord record;
  record.spec_digest = tag * 0x9e3779b97f4a7c15ull;
  record.algorithm = static_cast<std::uint32_t>(tag % 3);
  record.skyline_size = tag;
  record.wall_seconds = static_cast<double>(tag) * 1e-3;
  record.network_hits = tag;
  record.network_misses = tag + 1;
  record.settled_nodes = tag * 7;
  record.dominance_tests = tag * 11;
  return record;
}

TEST(FlightRecorderTest, AssignsSequentialSequences) {
  FlightRecorder recorder(/*capacity=*/8);
  EXPECT_EQ(recorder.Record(MakeRecord(1)), 1u);
  EXPECT_EQ(recorder.Record(MakeRecord(2)), 2u);
  EXPECT_EQ(recorder.Record(MakeRecord(3)), 3u);
  EXPECT_EQ(recorder.total_recorded(), 3u);

  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, i + 1);
    EXPECT_EQ(records[i].skyline_size, i + 1);
    EXPECT_EQ(records[i].spec_digest, (i + 1) * 0x9e3779b97f4a7c15ull);
  }
}

TEST(FlightRecorderTest, WrapKeepsMostRecentCapacityRecords) {
  FlightRecorder recorder(/*capacity=*/4);
  for (std::uint64_t tag = 1; tag <= 10; ++tag) {
    recorder.Record(MakeRecord(tag));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);

  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and exactly the last `capacity` completions survive.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, 7 + i);
    EXPECT_EQ(records[i].skyline_size, 7 + i);
    EXPECT_EQ(records[i].network_misses, 7 + i + 1);
  }
}

TEST(FlightRecorderTest, EmptySnapshotIsEmpty) {
  FlightRecorder recorder;
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.capacity(), FlightRecorder::kDefaultCapacity);
}

// 8 writers, ring deliberately smaller than the write volume so slots wrap
// constantly, plus a reader snapshotting mid-flight. Runs under TSan via
// tools/check.sh (suite name matches its -R "Hammer" filter).
TEST(FlightRecorderHammerTest, ConcurrentWritersNoLostOrTornRecords) {
  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 5000;
  FlightRecorder recorder(/*capacity=*/64);

  std::atomic<bool> start{false};
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&recorder, &start, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // Payload encodes (writer, i) redundantly across fields so a torn
        // record — fields from two different writes — is detectable.
        FlightRecord record;
        const std::uint64_t tag =
            static_cast<std::uint64_t>(w) * kPerWriter + i;
        record.spec_digest = tag;
        record.skyline_size = tag;
        record.settled_nodes = tag * 3;
        record.dominance_tests = tag * 5;
        recorder.Record(record);
      }
    });
  }
  // Concurrent reader: every retained record must be internally consistent.
  threads.emplace_back([&recorder, &start, &writers_done] {
    while (!start.load(std::memory_order_acquire)) {
    }
    while (!writers_done.load(std::memory_order_acquire)) {
      for (const FlightRecord& r : recorder.Snapshot()) {
        ASSERT_EQ(r.skyline_size, r.spec_digest);
        ASSERT_EQ(r.settled_nodes, r.spec_digest * 3);
        ASSERT_EQ(r.dominance_tests, r.spec_digest * 5);
      }
    }
  });
  start.store(true, std::memory_order_release);
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  threads.back().join();

  // No lost tickets: every write got a unique sequence.
  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);

  const std::vector<FlightRecord> records = recorder.Snapshot();
  EXPECT_LE(records.size(), recorder.capacity());
  EXPECT_FALSE(records.empty());
  std::map<std::uint64_t, int> sequences;
  for (const FlightRecord& r : records) {
    // Unique, committed sequences only, payload consistent.
    EXPECT_EQ(++sequences[r.sequence], 1) << "duplicated seq " << r.sequence;
    EXPECT_GE(r.sequence, 1u);
    EXPECT_LE(r.sequence, kWriters * kPerWriter);
    EXPECT_EQ(r.skyline_size, r.spec_digest);
    EXPECT_EQ(r.settled_nodes, r.spec_digest * 3);
    EXPECT_EQ(r.dominance_tests, r.spec_digest * 5);
  }
  // Snapshot is sorted oldest-first and the retained window is recent: all
  // surviving sequences come from the last 2*capacity completions (a slot
  // can be at most one lap stale when its overwrite was in flight).
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].sequence, records[i].sequence);
  }
  EXPECT_GE(records.back().sequence,
            kWriters * kPerWriter - 2 * recorder.capacity());
}

}  // namespace
}  // namespace msq::obs
