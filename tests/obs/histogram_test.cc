// obs::Histogram: bucket layout, exact count/sum, merging, the quantile
// error bound (within one log2 bucket of the exact order statistic over
// adversarial distributions), and relaxed-atomic concurrency (the
// HistogramConcurrencyTest suite runs under TSan via tools/check.sh).
#include <algorithm>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/histogram.h"

namespace msq::obs {
namespace {

// ---------------------------------------------------------- bucket layout

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(
      Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
      64u);
}

TEST(HistogramTest, BucketBoundsPartitionTheDomain) {
  EXPECT_EQ(Histogram::BucketLower(0), 0u);
  EXPECT_EQ(Histogram::BucketUpper(0), 0u);
  EXPECT_EQ(Histogram::BucketLower(1), 1u);
  EXPECT_EQ(Histogram::BucketUpper(1), 1u);
  // Buckets tile [0, 2^64) with no gaps or overlaps, and every bound maps
  // back into its own bucket.
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketLower(i), Histogram::BucketUpper(i - 1) + 1);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLower(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpper(i)), i);
  }
  EXPECT_EQ(Histogram::BucketUpper(64),
            std::numeric_limits<std::uint64_t>::max());
}

// ------------------------------------------------------- count/sum exact

TEST(HistogramTest, CountAndSumAreExact) {
  Histogram h;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v : {0ull, 1ull, 1ull, 7ull, 8ull, 1000ull, 123456ull}) {
    h.Observe(v);
    expected_sum += v;
  }
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), expected_sum);
  const Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, expected_sum);
  EXPECT_EQ(s.buckets[0], 1u);  // the 0
  EXPECT_EQ(s.buckets[1], 2u);  // the 1s
  EXPECT_EQ(s.buckets[3], 1u);  // 7
  EXPECT_EQ(s.buckets[4], 1u);  // 8
}

TEST(HistogramTest, MergeAddsBucketwise) {
  Histogram a;
  Histogram b;
  for (std::uint64_t v = 0; v < 100; ++v) a.Observe(v);
  for (std::uint64_t v = 100; v < 300; ++v) b.Observe(v);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 300u);
  EXPECT_EQ(a.sum(), 299u * 300u / 2u);
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    std::uint64_t expect = 0;
    for (std::uint64_t v = 0; v < 300; ++v) {
      if (Histogram::BucketIndex(v) == i) ++expect;
    }
    EXPECT_EQ(a.bucket(i), expect) << "bucket " << i;
  }
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

// -------------------------------------------------- quantile error bound

// The exact order statistic with the histogram's own rank convention.
std::uint64_t ExactQuantile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[rank];
}

// Asserts the contract: the estimate lies within the log2 bucket of the
// exact order statistic, i.e. in [BucketLower(i), BucketUpper(i)] for the
// exact value's bucket i.
void CheckQuantiles(const std::vector<std::uint64_t>& values) {
  Histogram h;
  for (std::uint64_t v : values) h.Observe(v);
  const Histogram::Snapshot s = h.TakeSnapshot();
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t exact = ExactQuantile(values, q);
    const std::size_t bucket = Histogram::BucketIndex(exact);
    const double estimate = s.Quantile(q);
    EXPECT_GE(estimate, static_cast<double>(Histogram::BucketLower(bucket)))
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(estimate, static_cast<double>(Histogram::BucketUpper(bucket)))
        << "q=" << q << " exact=" << exact;
  }
}

TEST(HistogramTest, QuantileWithinOneBucketUniform) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 10000; ++v) values.push_back(v);
  CheckQuantiles(values);
}

TEST(HistogramTest, QuantileWithinOneBucketHeavyTail) {
  // Pareto-ish: many tiny values, a few enormous ones — the distribution
  // latency histograms actually see.
  std::vector<std::uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextBounded(16));
  for (int i = 0; i < 50; ++i) values.push_back(1000000 + rng.NextBounded(1000));
  for (int i = 0; i < 3; ++i) {
    values.push_back(std::uint64_t{1} << 40);
  }
  CheckQuantiles(values);
}

TEST(HistogramTest, QuantileWithinOneBucketPointMass) {
  // All mass on one value: every quantile must land in that value's bucket.
  std::vector<std::uint64_t> values(1000, 777);
  CheckQuantiles(values);
}

TEST(HistogramTest, QuantileWithinOneBucketBimodal) {
  // Two spikes at opposite ends with a cliff between them — adversarial
  // for interpolation.
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(2);
  for (int i = 0; i < 500; ++i) values.push_back(1u << 30);
  CheckQuantiles(values);
}

TEST(HistogramTest, QuantileWithinOneBucketPowersOfTwo) {
  // One observation per bucket boundary: rank arithmetic has no slack.
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < 63; ++i) {
    values.push_back(std::uint64_t{1} << i);
    values.push_back((std::uint64_t{1} << i) + ((std::uint64_t{1} << i) - 1));
  }
  CheckQuantiles(values);
}

TEST(HistogramTest, QuantileMatchesSortedVectorOnSmallValues) {
  // For values 0 and 1 the buckets are exact singletons, so the histogram
  // quantile must equal the sorted-vector percentile it replaced.
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 90; ++i) values.push_back(0);
  for (int i = 0; i < 10; ++i) values.push_back(1);
  Histogram h;
  for (std::uint64_t v : values) h.Observe(v);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 1.0);
}

// ------------------------------------------------------------ concurrency

// Runs under TSan via tools/check.sh tsan (suite name matches its -R
// filter). Observers hammer one histogram; totals must conserve.
TEST(HistogramConcurrencyTest, ConcurrentObservesConserveCountAndSum) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(rng.NextBounded(1u << 20));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    bucket_total += s.buckets[i];
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(HistogramConcurrencyTest, SnapshotDuringWritesStaysConsistent) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Observe(v++ & 0xfff);
      }
    });
  }
  // Snapshots taken mid-write: bucket total must always equal the snapshot
  // count (TakeSnapshot derives count from the buckets), and successive
  // snapshot counts must be monotone.
  std::uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const Histogram::Snapshot s = h.TakeSnapshot();
    std::uint64_t bucket_total = 0;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      bucket_total += s.buckets[b];
    }
    ASSERT_EQ(bucket_total, s.count);
    ASSERT_GE(s.count, last_count);
    last_count = s.count;
    if (s.count > 0) {
      const double mid = s.Quantile(0.5);
      ASSERT_GE(mid, 0.0);
      ASSERT_LE(mid, 4096.0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
}

}  // namespace
}  // namespace msq::obs
