#include <cstddef>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq::obs {
namespace {

// ------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CounterFindOrCreateIsStable) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.events");
  Counter* b = registry.counter("x.events");
  EXPECT_EQ(a, b);
  a->Inc();
  a->Inc(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_NE(registry.counter("y.events"), a);
}

TEST(MetricsRegistryTest, GaugeTracksPeakAcrossResets) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("heap");
  g->Update(3.0);
  g->Update(9.0);
  g->Update(5.0);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  EXPECT_DOUBLE_EQ(g->peak(), 9.0);
  g->ResetPeak();
  EXPECT_DOUBLE_EQ(g->peak(), 5.0);  // restarts from the current level
  g->MergePeak(9.0);
  EXPECT_DOUBLE_EQ(g->peak(), 9.0);
}

TEST(MetricsRegistryTest, IterationInNameOrder) {
  MetricsRegistry registry;
  registry.counter("b")->Inc(2);
  registry.counter("a")->Inc(1);
  std::string names;
  registry.ForEachCounter([&](const std::string& name, const Counter&) {
    names += name;
    names += ",";
  });
  EXPECT_EQ(names, "a,b,");
}

// ------------------------------------------------------------ JsonEscape

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
}

TEST(JsonEscapeTest, EscapesEveryControlCharacterExactlyOnce) {
  for (int c = 0; c < 0x20; ++c) {
    const char raw = static_cast<char>(c);
    const std::string escaped = JsonEscape(std::string_view(&raw, 1));
    // Every C0 control gets an escape (named or \u00XX) — never raw.
    ASSERT_GE(escaped.size(), 2u) << "control 0x" << std::hex << c;
    EXPECT_EQ(escaped[0], '\\') << "control 0x" << std::hex << c;
  }
  // NUL is a control character, not a terminator.
  EXPECT_EQ(JsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
  // 0x20 and 0x7f are not C0 controls; they pass through.
  EXPECT_EQ(JsonEscape(" "), " ");
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
}

TEST(JsonEscapeTest, MultiByteUtf8PassesThroughUnchanged) {
  // JSON strings are UTF-8; bytes >= 0x80 must be copied verbatim, never
  // treated as controls (char may be signed — a naive `c < 0x20` breaks).
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");          // é (2-byte)
  EXPECT_EQ(JsonEscape("\xe2\x86\x92"), "\xe2\x86\x92");        // → (3-byte)
  EXPECT_EQ(JsonEscape("\xf0\x9f\x9a\x80"), "\xf0\x9f\x9a\x80");  // 🚀 (4)
  // Mixed: escapes apply to the ASCII part only.
  EXPECT_EQ(JsonEscape("\xc3\xa9\n\"\xf0\x9f\x9a\x80"),
            "\xc3\xa9\\n\\\"\xf0\x9f\x9a\x80");
}

// --------------------------------------------------------------- exporters

TEST(PrometheusNameTest, PrefixesAndMangles) {
  // DESIGN.md §9: prefix msq_, any char outside [a-zA-Z0-9_] becomes '_'.
  EXPECT_EQ(PrometheusName("exec.ce.latency_us_hist"),
            "msq_exec_ce_latency_us_hist");
  EXPECT_EQ(PrometheusName("buffer.network.hits"),
            "msq_buffer_network_hits");
  EXPECT_EQ(PrometheusName("weird-name with/chars"),
            "msq_weird_name_with_chars");
  EXPECT_EQ(PrometheusName(""), "msq_");
}

TEST(PrometheusTextTest, EmitsCountersGaugesAndBuildInfo) {
  MetricsRegistry registry;
  registry.counter("exec.queries")->Inc(5);
  registry.gauge("heap.bytes")->Update(42.0);
  const std::string text = PrometheusText(registry);

  EXPECT_NE(text.find("# TYPE msq_build_info gauge\n"), std::string::npos);
  EXPECT_NE(text.find("msq_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE msq_exec_queries counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("msq_exec_queries 5\n"), std::string::npos);
  EXPECT_NE(text.find("msq_heap_bytes 42\n"), std::string::npos);
  EXPECT_NE(text.find("msq_heap_bytes_peak 42\n"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("exec.ce.latency_us_hist");
  h->Observe(0);  // bucket 0 (le="0")
  h->Observe(1);  // bucket 1 (le="1")
  h->Observe(1);
  h->Observe(5);  // bucket 3 (le="7")
  const std::string text = PrometheusText(registry);

  const char* expected =
      "# TYPE msq_exec_ce_latency_us_hist histogram\n"
      "msq_exec_ce_latency_us_hist_bucket{le=\"0\"} 1\n"
      "msq_exec_ce_latency_us_hist_bucket{le=\"1\"} 3\n"
      "msq_exec_ce_latency_us_hist_bucket{le=\"3\"} 3\n"
      "msq_exec_ce_latency_us_hist_bucket{le=\"7\"} 4\n"
      "msq_exec_ce_latency_us_hist_bucket{le=\"+Inf\"} 4\n"
      "msq_exec_ce_latency_us_hist_sum 7\n"
      "msq_exec_ce_latency_us_hist_count 4\n";
  EXPECT_NE(text.find(expected), std::string::npos) << text;
}

TEST(MetricsJsonlTest, StartsWithBuildInfoAndListsHistograms) {
  MetricsRegistry registry;
  registry.counter("a.events")->Inc(2);
  registry.histogram("a.sizes_hist")->Observe(9);
  const std::string jsonl = MetricsJsonl(registry);

  EXPECT_EQ(jsonl.rfind("{\"type\":\"build_info\",\"git_sha\":\"", 0), 0u);
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"a.events\","
                       "\"value\":2}\n"),
            std::string::npos);
  // 9 lands in bucket 4 = [8, 15]; buckets export as [upper, count] pairs.
  EXPECT_NE(jsonl.find("{\"type\":\"histogram\",\"name\":\"a.sizes_hist\","
                       "\"count\":1,\"sum\":9,\"buckets\":[[15,1]]}\n"),
            std::string::npos);
}

TEST(BuildInfoTest, StampIsPopulatedAndJsonWellFormed) {
  const BuildInfo& build = GetBuildInfo();
  EXPECT_FALSE(build.git_sha.empty());
  EXPECT_FALSE(build.compiler.empty());
  EXPECT_FALSE(build.build_type.empty());

  const std::string json = BuildInfoJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(json.find("\"flags\":\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":\""), std::string::npos);
}

// ----------------------------------------------------------- TraceSession

TEST(TraceSessionTest, AttributesDeltasToInnermostSpan) {
  MetricsRegistry registry;
  Counter* settled = registry.counter(metric::kSettledNodes);
  TraceSession session(&registry);

  const int outer = session.OpenSpan("outer");
  settled->Inc(10);
  const int inner = session.OpenSpan("inner");
  settled->Inc(3);
  session.CloseSpan(inner);
  settled->Inc(7);
  session.CloseSpan(outer);

  const QueryProfile profile = session.Take();
  ASSERT_EQ(profile.spans.size(), 2u);
  EXPECT_EQ(profile.spans[0].name, "outer");
  EXPECT_EQ(profile.spans[0].parent, -1);
  EXPECT_EQ(profile.spans[0].depth, 0);
  EXPECT_EQ(profile.spans[1].name, "inner");
  EXPECT_EQ(profile.spans[1].parent, 0);
  EXPECT_EQ(profile.spans[1].depth, 1);
  // 10 before inner + 7 after it are the outer span's own work.
  EXPECT_EQ(profile.spans[0].self.settled_nodes, 17u);
  EXPECT_EQ(profile.spans[1].self.settled_nodes, 3u);
  EXPECT_EQ(profile.InclusiveCounters(0).settled_nodes, 20u);
  EXPECT_EQ(profile.TotalCounters().settled_nodes, 20u);
}

TEST(TraceSessionTest, UnbalancedCloseForceClosesDescendants) {
  MetricsRegistry registry;
  Counter* settled = registry.counter(metric::kSettledNodes);
  TraceSession session(&registry);

  const int outer = session.OpenSpan("outer");
  const int child = session.OpenSpan("child");
  session.OpenSpan("grandchild");
  settled->Inc(5);
  EXPECT_EQ(session.open_depth(), 3u);
  session.CloseSpan(outer);  // closes grandchild and child first
  EXPECT_TRUE(session.idle());

  session.CloseSpan(child);   // already closed: no-op
  session.CloseSpan(-1);      // dropped id: no-op
  session.CloseSpan(999);     // out of range: no-op

  const QueryProfile profile = session.Take();
  ASSERT_EQ(profile.spans.size(), 3u);
  // The delta was pending at the unbalanced close and belongs to the
  // innermost open span at that moment.
  EXPECT_EQ(profile.spans[2].self.settled_nodes, 5u);
  EXPECT_EQ(profile.TotalCounters().settled_nodes, 5u);
  for (const SpanRecord& span : profile.spans) {
    EXPECT_GE(span.end_seconds, span.start_seconds);
  }
}

TEST(TraceSessionTest, TakeForceClosesAndResets) {
  MetricsRegistry registry;
  TraceSession session(&registry);
  session.OpenSpan("left.open");
  const QueryProfile profile = session.Take();
  ASSERT_EQ(profile.spans.size(), 1u);
  EXPECT_TRUE(session.idle());

  // Session is reusable after Take.
  const int id = session.OpenSpan("second.query");
  session.CloseSpan(id);
  const QueryProfile next = session.Take();
  ASSERT_EQ(next.spans.size(), 1u);
  EXPECT_EQ(next.spans[0].name, "second.query");
}

TEST(TraceSessionTest, GaugePeakIsScopedPerSpan) {
  MetricsRegistry registry;
  Gauge* heap = registry.gauge(metric::kHeapPeak);
  TraceSession session(&registry);

  const int outer = session.OpenSpan("outer");
  heap->Update(2.0);
  const int inner = session.OpenSpan("inner");
  heap->Update(7.0);
  heap->Update(1.0);
  session.CloseSpan(inner);
  session.CloseSpan(outer);

  const QueryProfile profile = session.Take();
  ASSERT_EQ(profile.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.spans[1].heap_peak, 7.0);
  // The child's high-water mark folds back into the parent.
  EXPECT_DOUBLE_EQ(profile.spans[0].heap_peak, 7.0);
}

TEST(SpanTest, NullSessionIsNoOp) {
  Span null_span(nullptr, "ignored");
  null_span.Close();  // must not crash

  MetricsRegistry registry;
  TraceSession session(&registry);
  {
    Span outer(&session, "outer");
    Span moved = std::move(outer);
    // `outer` no longer closes anything; `moved` closes at scope exit.
  }
  EXPECT_TRUE(session.idle());
  EXPECT_EQ(session.Take().spans.size(), 1u);
}

// -------------------------------------- BufferManager counter attribution

TEST(BufferAttributionTest, ScriptedFetchesLandInTheRightSpans) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, /*frames=*/4);
  MetricsRegistry registry;
  buffer.AttachMetrics(&registry, metric::kNetworkBufferPrefix);

  PageId pages[3];
  for (PageId& id : pages) {
    auto alloc = buffer.AllocatePage();
    ASSERT_TRUE(alloc.ok());
    id = alloc.value().id();
  }
  ASSERT_TRUE(buffer.Clear().ok());  // next fetch of any page is a miss

  TraceSession session(&registry);
  const int cold = session.OpenSpan("cold");
  for (const PageId id : pages) ASSERT_TRUE(buffer.Fetch(id).ok());
  session.CloseSpan(cold);
  const int warm = session.OpenSpan("warm");
  ASSERT_TRUE(buffer.Fetch(pages[0]).ok());
  ASSERT_TRUE(buffer.Fetch(pages[1]).ok());
  session.CloseSpan(warm);

  const QueryProfile profile = session.Take();
  ASSERT_EQ(profile.spans.size(), 2u);
  EXPECT_EQ(profile.spans[0].self.network_misses, 3u);
  EXPECT_EQ(profile.spans[0].self.network_hits, 0u);
  EXPECT_EQ(profile.spans[1].self.network_misses, 0u);
  EXPECT_EQ(profile.spans[1].self.network_hits, 2u);
  // Registry totals match the pool's own statistics.
  EXPECT_EQ(registry.counter(metric::kNetworkBufferMisses)->value(),
            buffer.stats().misses);
  EXPECT_EQ(registry.counter(metric::kNetworkBufferHits)->value(),
            buffer.stats().hits);
}

TEST(BufferAttributionTest, UnattachedPoolReportsNothing) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, /*frames=*/2);
  auto alloc = buffer.AllocatePage();
  ASSERT_TRUE(alloc.ok());
  const PageId id = alloc.value().id();
  alloc.value().Release();
  ASSERT_TRUE(buffer.Fetch(id).ok());
  EXPECT_GT(buffer.stats().accesses(), 0u);  // pool counts, registry silent
}

}  // namespace
}  // namespace msq::obs
