// EXPLAIN-plan checks: for every algorithm, the ExecutionPlan built from a
// run's stats/profile/collector must hold to the ReconcilePlan oracle —
// every plan counter equals its QueryStats twin exactly, the tightness
// histogram agrees with the independently counted sample counters, and the
// phase rollup partitions the totals. Also covers the plan/explainz JSON
// encodings, the oracle's own sensitivity, and the bounded PlanStore ring.
#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "obs/plan.h"
#include "obs/trace.h"
#include "testing_support.h"

namespace msq {
namespace {

// Minimal recursive-descent JSON validator (same shape as the one in
// profile_reconcile_test.cc) — enough to prove the encodings are
// well-formed without a JSON library.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Runs `algorithm` with tracing + plan collection and returns the plan
// after asserting it reconciles exactly with the run's QueryStats.
struct PlanRun {
  obs::ExecutionPlan plan;
  SkylineResult result;
  std::size_t source_count = 0;
};

PlanRun RunAndReconcile(Algorithm algorithm, std::uint64_t seed) {
  auto workload = testing::MakeRandomWorkload(220, 300, 0.6, seed);
  SkylineQuerySpec spec = workload->SampleQuery(4, seed + 100);
  obs::TraceSession trace;
  obs::PlanCollector collector;
  spec.trace = &trace;
  spec.plan = &collector;
  workload->ResetBuffers();
  PlanRun run;
  run.result = RunSkylineQuery(algorithm, workload->dataset(), spec);
  run.source_count = spec.sources.size();
  EXPECT_TRUE(run.result.status.ok());
  EXPECT_TRUE(run.result.profile.has_value());
  run.plan = obs::BuildExecutionPlan(
      AlgorithmName(algorithm), run.result.stats,
      run.result.profile.has_value() ? &*run.result.profile : nullptr,
      &collector, run.result.truncated);
  EXPECT_EQ(obs::ReconcilePlan(run.plan, run.result.stats), "");
  return run;
}

void ExpectPlanReconciles(Algorithm algorithm, std::uint64_t seed) {
  const PlanRun run = RunAndReconcile(algorithm, seed);
  const obs::ExecutionPlan& plan = run.plan;
  EXPECT_EQ(plan.algorithm, AlgorithmName(algorithm));
  EXPECT_FALSE(plan.truncated);
  EXPECT_EQ(plan.skyline_size, run.result.skyline.size());
  // The phase breakdown exists (the traced run always has a root span) and
  // ends with the synthetic "unattributed" phase carrying the root's self
  // counters.
  ASSERT_FALSE(plan.phases.empty());
  EXPECT_EQ(plan.phases.back().name, "unattributed");
  // Every algorithm records final wavefront progress for every query
  // source exactly once.
  ASSERT_EQ(plan.sources.size(), run.source_count);
  std::uint64_t source_settled = 0;
  for (const obs::PlanSourceProgress& source : plan.sources) {
    EXPECT_LT(source.source, run.source_count);
    EXPECT_FALSE(source.resumed_from_cache);  // cacheless harness
    source_settled += source.settled_nodes;
  }
  EXPECT_GT(source_settled, 0u);
  // Cacheless: every exact distance was computed, none answered from a
  // memo or a cached wavefront, and the cache counters stayed zero.
  EXPECT_EQ(plan.tiers.memo_hits, 0u);
  EXPECT_EQ(plan.tiers.wavefront_exact, 0u);
  EXPECT_GT(plan.tiers.computed, 0u);
  EXPECT_EQ(plan.cache_hits, 0u);
  EXPECT_EQ(plan.dominance_tests, run.result.stats.dominance_tests);
  EXPECT_GT(plan.dominance_tests, 0u);
}

TEST(PlanReconcileTest, NaivePlanReconcilesWithQueryStats) {
  ExpectPlanReconciles(Algorithm::kNaive, 21);
}

TEST(PlanReconcileTest, CePlanReconcilesWithQueryStats) {
  ExpectPlanReconciles(Algorithm::kCe, 22);
}

TEST(PlanReconcileTest, EdcPlanReconcilesWithQueryStats) {
  ExpectPlanReconciles(Algorithm::kEdc, 23);
}

TEST(PlanReconcileTest, EdcIncrementalPlanReconcilesWithQueryStats) {
  ExpectPlanReconciles(Algorithm::kEdcIncremental, 24);
}

TEST(PlanReconcileTest, LbcPlanReconcilesWithQueryStats) {
  ExpectPlanReconciles(Algorithm::kLbc, 25);
}

TEST(PlanReconcileTest, BoundAlgorithmsTakeTightnessSamples) {
  // EDC and LBC complete objects to exact distances after holding a lower
  // bound on them — each completion site records a plb/dN tightness sample,
  // so the histogram (collector path) and the sample counters (thread
  // counter path) must both be non-empty and agree.
  for (const Algorithm algorithm : {Algorithm::kEdc, Algorithm::kLbc}) {
    const PlanRun run = RunAndReconcile(algorithm, 31);
    EXPECT_GT(run.plan.bound_tightness_samples, 0u)
        << AlgorithmName(algorithm);
    EXPECT_EQ(run.plan.bound_tightness.count,
              run.plan.bound_tightness_samples);
    // Tightness is a percent plb/dN with plb <= dN, so the mean lies in
    // (0, 100].
    EXPECT_GT(run.plan.mean_tightness_pct(), 0.0);
    EXPECT_LE(run.plan.mean_tightness_pct(), 100.0);
  }
}

TEST(PlanReconcileTest, ReconcileDetectsEveryTamperedCounter) {
  PlanRun run = RunAndReconcile(Algorithm::kLbc, 37);
  // Scalar twin drift.
  obs::ExecutionPlan tampered = run.plan;
  tampered.dominance_tests += 1;
  EXPECT_NE(obs::ReconcilePlan(tampered, run.result.stats), "");
  // Histogram-vs-counter drift (the two independent sample paths).
  tampered = run.plan;
  tampered.bound_tightness.count += 1;
  EXPECT_NE(obs::ReconcilePlan(tampered, run.result.stats), "");
  // Phase rollup no longer partitioning the totals.
  tampered = run.plan;
  ASSERT_FALSE(tampered.phases.empty());
  tampered.phases.back().counters.settled_nodes += 1;
  EXPECT_NE(obs::ReconcilePlan(tampered, run.result.stats), "");
}

TEST(PlanReconcileTest, PlanJsonIsValidAndCarriesEverySection) {
  const PlanRun run = RunAndReconcile(Algorithm::kLbc, 41);
  const std::string json = obs::PlanJson(run.plan);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  EXPECT_EQ(json.front(), '{');
  for (const char* key :
       {"\"algorithm\":\"lbc\"", "\"dominance_tests\":", "\"bounds\":",
        "\"tightness\":", "\"histogram\":", "\"pages\":", "\"cache\":",
        "\"lookup_tiers\":", "\"phases\":", "\"sources\":",
        "\"candidates\":", "\"skyline_size\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Hostile algorithm names survive the encoding.
  obs::ExecutionPlan hostile = run.plan;
  hostile.algorithm = "we\"ird\\algo\n";
  const std::string hostile_json = obs::PlanJson(hostile);
  EXPECT_TRUE(JsonValidator(hostile_json).Valid()) << hostile_json;
}

TEST(PlanReconcileTest, ExplainzJsonAggregatesPerAlgorithm) {
  // The rollup is fed by Account (every completion), the plans array by
  // Retain (explain-requested only) — exercise both sides of the store.
  obs::PlanStore store;
  std::uint64_t sequence = 0;
  const std::pair<Algorithm, std::uint64_t> cases[] = {
      {Algorithm::kCe, 51}, {Algorithm::kEdc, 52}, {Algorithm::kLbc, 53}};
  for (const auto& [algorithm, seed] : cases) {
    const PlanRun run = RunAndReconcile(algorithm, seed);
    store.Account(run.plan.algorithm, run.result.stats);
    obs::RetainedPlan entry;
    entry.sequence = ++sequence;
    entry.trace_id = "0123456789abcdef0123456789abcdef";
    entry.plan = run.plan;
    store.Retain(std::move(entry));
  }
  EXPECT_EQ(store.accounted_total(), 3u);
  EXPECT_EQ(store.retained_total(), 3u);
  const std::string json = obs::ExplainzJson(store);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"pruning_efficiency\":["), std::string::npos);
  EXPECT_NE(json.find("\"plans\":["), std::string::npos);
  for (const char* algo : {"ce", "edc", "lbc"}) {
    EXPECT_NE(json.find(std::string("\"algorithm\":\"") + algo + "\""),
              std::string::npos)
        << algo;
  }
  for (const char* key :
       {"\"queries\":", "\"avoided_ratio\":", "\"prune_ratio\":",
        "\"mean_tightness_pct\":", "\"sequence\":", "\"trace_id\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // An accounted-but-never-retained completion still shows in the rollup.
  obs::PlanStore rollup_only;
  QueryStats stats;
  stats.dominance_tests = 10;
  rollup_only.Account("edc", stats);
  const std::string rollup = obs::ExplainzJson(rollup_only);
  EXPECT_TRUE(JsonValidator(rollup).Valid());
  EXPECT_NE(rollup.find("\"algorithm\":\"edc\""), std::string::npos);
  EXPECT_NE(rollup.find("\"plans\":[]"), std::string::npos);
  // Empty store: both arrays present and empty, still valid JSON.
  const std::string empty = obs::ExplainzJson(obs::PlanStore{});
  EXPECT_TRUE(JsonValidator(empty).Valid());
  EXPECT_NE(empty.find("\"pruning_efficiency\":[]"), std::string::npos);
  EXPECT_NE(empty.find("\"plans\":[]"), std::string::npos);
}

TEST(PlanReconcileTest, PlanStoreKeepsTheMostRecentPlansBounded) {
  obs::PlanStore store(/*capacity=*/4);
  EXPECT_EQ(store.capacity(), 4u);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::RetainedPlan entry;
    entry.sequence = i;
    entry.plan.algorithm = "ce";
    store.Retain(std::move(entry));
  }
  EXPECT_EQ(store.retained_total(), 6u);
  const std::vector<obs::RetainedPlan> snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].sequence, i + 3);  // 3, 4, 5, 6 — oldest dropped
  }
}

TEST(PlanReconcileTest, UncollectedRunBuildsBarePlanThatStillReconciles) {
  // No collector and no profile: the plan still carries the exact scalar
  // totals, and the oracle holds when the run took no tightness samples
  // (CE never does — it has no lower-bound completion sites).
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 61);
  const SkylineQuerySpec spec = workload->SampleQuery(3, 71);
  workload->ResetBuffers();
  const SkylineResult result =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.stats.bound_tightness_samples, 0u);
  const obs::ExecutionPlan plan = obs::BuildExecutionPlan(
      "ce", result.stats, /*profile=*/nullptr, /*collector=*/nullptr,
      result.truncated);
  EXPECT_EQ(obs::ReconcilePlan(plan, result.stats), "");
  EXPECT_TRUE(plan.phases.empty());
  EXPECT_TRUE(plan.sources.empty());
  EXPECT_EQ(plan.mean_tightness_pct(), 0.0);
}

}  // namespace
}  // namespace msq
