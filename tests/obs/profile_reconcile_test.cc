// End-to-end tracing checks: per-phase self counters must sum EXACTLY to
// the query's top-level QueryStats for every traced algorithm, and the
// Chrome trace export must be valid JSON.
#include <cctype>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/skyline_query.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "testing_support.h"

namespace msq {
namespace {

// Minimal recursive-descent JSON validator — enough to prove the export is
// well-formed without pulling in a JSON library.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Runs `algorithm` traced and asserts the profile's self-counter totals
// reconcile exactly with the result's QueryStats.
void ExpectProfileMatchesStats(Algorithm algorithm, std::uint64_t seed) {
  auto workload = testing::MakeRandomWorkload(220, 300, 0.6, seed);
  SkylineQuerySpec spec = workload->SampleQuery(4, seed + 100);
  obs::TraceSession trace;
  spec.trace = &trace;
  workload->ResetBuffers();
  const SkylineResult result =
      RunSkylineQuery(algorithm, workload->dataset(), spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.profile.has_value());
  const obs::QueryProfile& profile = *result.profile;
  ASSERT_FALSE(profile.spans.empty());
  EXPECT_EQ(profile.spans[0].parent, -1);
  EXPECT_EQ(profile.dropped_spans, 0u);

  const obs::SpanCounters total = profile.TotalCounters();
  EXPECT_EQ(total.network_misses, result.stats.network_pages);
  EXPECT_EQ(total.network_hits + total.network_misses,
            result.stats.network_page_accesses);
  EXPECT_EQ(total.index_misses, result.stats.index_pages);
  EXPECT_EQ(total.index_hits + total.index_misses,
            result.stats.index_page_accesses);
  EXPECT_EQ(total.settled_nodes, result.stats.settled_nodes);
  // Cache consultations reconcile as their own access class (zero in this
  // cacheless harness, non-zero coverage lives in tests/cache/).
  EXPECT_EQ(total.cache_wavefront_hits, result.stats.cache_wavefront_hits);
  EXPECT_EQ(total.cache_wavefront_misses,
            result.stats.cache_wavefront_misses);
  EXPECT_EQ(total.cache_memo_hits, result.stats.cache_memo_hits);
  EXPECT_EQ(total.cache_memo_misses, result.stats.cache_memo_misses);

  // Self counters are an exact partition: summing them must also equal the
  // root span's inclusive view.
  const obs::SpanCounters root = profile.InclusiveCounters(0);
  EXPECT_EQ(root.network_misses, total.network_misses);
  EXPECT_EQ(root.settled_nodes, total.settled_nodes);
  EXPECT_EQ(root.dominance_tests, total.dominance_tests);

  // Trace window timing must cover the stats window (both are the same
  // program points, so the root duration matches total_seconds closely;
  // only assert ordering to stay timer-robust).
  EXPECT_GE(profile.spans[0].end_seconds, profile.spans[0].start_seconds);
}

TEST(ProfileReconcileTest, CeSelfCountersSumToQueryStats) {
  ExpectProfileMatchesStats(Algorithm::kCe, 5);
}

TEST(ProfileReconcileTest, EdcSelfCountersSumToQueryStats) {
  ExpectProfileMatchesStats(Algorithm::kEdc, 6);
}

TEST(ProfileReconcileTest, EdcIncrementalSelfCountersSumToQueryStats) {
  ExpectProfileMatchesStats(Algorithm::kEdcIncremental, 7);
}

TEST(ProfileReconcileTest, LbcSelfCountersSumToQueryStats) {
  ExpectProfileMatchesStats(Algorithm::kLbc, 8);
}

TEST(ProfileReconcileTest, NaiveSelfCountersSumToQueryStats) {
  ExpectProfileMatchesStats(Algorithm::kNaive, 9);
}

TEST(ProfileReconcileTest, UntracedQueryCarriesNoProfile) {
  auto workload = testing::MakeRandomWorkload(120, 160, 0.5, 3);
  const SkylineQuerySpec spec = workload->SampleQuery(3, 44);
  workload->ResetBuffers();
  const SkylineResult result =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.profile.has_value());
}

TEST(ProfileReconcileTest, ChromeTraceOfCeQueryIsValidJson) {
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 11);
  SkylineQuerySpec spec = workload->SampleQuery(3, 21);
  obs::TraceSession trace;
  spec.trace = &trace;
  workload->ResetBuffers();
  const SkylineResult result =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.profile.has_value());

  const std::string json = obs::ToChromeTrace(*result.profile);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  // trace_event shape: an array of complete events.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ce\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{"), std::string::npos);

  // The validator itself must reject malformed input.
  EXPECT_FALSE(JsonValidator("[{\"a\":}]").Valid());
  EXPECT_FALSE(JsonValidator("[1, 2").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\" 1}").Valid());

  // Names with JSON-hostile characters survive the round trip.
  obs::TraceSession hostile;
  const int id = hostile.OpenSpan("we\"ird\\phase\n");
  hostile.CloseSpan(id);
  const std::string hostile_json = obs::ToChromeTrace(hostile.Take());
  EXPECT_TRUE(JsonValidator(hostile_json).Valid()) << hostile_json;

  // The metrics registry dump is line-delimited JSON.
  const std::string jsonl = obs::MetricsJsonl(obs::GlobalMetrics());
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string_view line(jsonl.data() + start, end - start);
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
    start = end + 1;
  }
}

TEST(ProfileReconcileTest, ProfileReportAggregatesPhases) {
  auto workload = testing::MakeRandomWorkload(150, 200, 0.5, 13);
  SkylineQuerySpec spec = workload->SampleQuery(4, 31);
  obs::TraceSession trace;
  spec.trace = &trace;
  workload->ResetBuffers();
  const SkylineResult result =
      RunSkylineQuery(Algorithm::kLbc, workload->dataset(), spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.profile.has_value());
  const std::string report = obs::ProfileReport(*result.profile);
  EXPECT_NE(report.find("lbc"), std::string::npos);
  EXPECT_NE(report.find("lbc.filter"), std::string::npos);
  EXPECT_NE(report.find("total (self sum)"), std::string::npos);
  // The derived layout-locality section follows the table, and its shared
  // derivation reconciles exactly with QueryStats (same integers through
  // the same function).
  EXPECT_NE(report.find("pages_per_settled_node"), std::string::npos);
  const obs::SpanCounters total = result.profile->TotalCounters();
  EXPECT_EQ(
      obs::PagesPerSettledNode(total.network_misses, total.settled_nodes),
      obs::PagesPerSettledNode(result.stats.network_pages,
                               result.stats.settled_nodes));
  EXPECT_EQ(obs::PagesPerSettledNode(0, 0), 0.0);
  EXPECT_EQ(obs::PagesPerSettledNode(6, 4), 1.5);
}

}  // namespace
}  // namespace msq
