// TraceContext: the strict W3C traceparent grammar, mint uniqueness, and
// hex round-trips. Parsing is the serving edge's reject-don't-guess
// surface, so the reject cases get the same weight as the happy path.
#include "obs/request_context.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace msq::obs {
namespace {

constexpr char kGood[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

TEST(RequestContextTest, ParsesWellFormedTraceparent) {
  const StatusOr<TraceContext> parsed = TraceContext::Parse(kGood);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceContext& ctx = parsed.value();
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.trace_id_hi, 0x4bf92f3577b34da6ull);
  EXPECT_EQ(ctx.trace_id_lo, 0xa3ce929d0e0e4736ull);
  EXPECT_EQ(ctx.parent_span_id, 0x00f067aa0ba902b7ull);
  EXPECT_TRUE(ctx.sampled);
  EXPECT_EQ(ctx.TraceIdHex(), "4bf92f3577b34da6a3ce929d0e0e4736");
}

TEST(RequestContextTest, FlagsBitZeroIsTheSamplingDecision) {
  std::string unsampled = kGood;
  unsampled.back() = '0';  // flags 00
  ASSERT_TRUE(TraceContext::Parse(unsampled).ok());
  EXPECT_FALSE(TraceContext::Parse(unsampled).value().sampled);
  // Other flag bits may be set without affecting the decision.
  std::string extra_flags = kGood;
  extra_flags[extra_flags.size() - 2] = 'f';
  extra_flags.back() = 'e';  // fe: bit 0 clear
  ASSERT_TRUE(TraceContext::Parse(extra_flags).ok());
  EXPECT_FALSE(TraceContext::Parse(extra_flags).value().sampled);
}

TEST(RequestContextTest, RejectsWrongLength) {
  EXPECT_FALSE(TraceContext::Parse("").ok());
  EXPECT_FALSE(TraceContext::Parse("00").ok());
  EXPECT_FALSE(
      TraceContext::Parse(std::string(kGood) + "0").ok());  // 56 bytes
  EXPECT_FALSE(
      TraceContext::Parse(std::string(kGood, sizeof(kGood) - 3)).ok());
}

TEST(RequestContextTest, RejectsMalformedStructure) {
  // Separators in the wrong place.
  std::string bad = kGood;
  bad[2] = '_';
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
  bad = kGood;
  bad[35] = ' ';
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
  // Unknown version.
  bad = kGood;
  bad[0] = '0';
  bad[1] = '1';
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
}

TEST(RequestContextTest, RejectsBadHex) {
  std::string bad = kGood;
  bad[10] = 'g';  // not hex
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
  bad = kGood;
  bad[10] = 'A';  // uppercase hex is out per the strict grammar
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
  bad = kGood;
  bad[sizeof(kGood) - 2] = 'G';  // flags field
  EXPECT_FALSE(TraceContext::Parse(bad).ok());
}

TEST(RequestContextTest, RejectsZeroIds) {
  const std::string zero_trace =
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01";
  EXPECT_FALSE(TraceContext::Parse(zero_trace).ok());
  const std::string zero_parent =
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01";
  EXPECT_FALSE(TraceContext::Parse(zero_parent).ok());
}

TEST(RequestContextTest, ToTraceparentRoundTrips) {
  const TraceContext ctx = TraceContext::Parse(kGood).value();
  EXPECT_EQ(ctx.ToTraceparent(), kGood);
  const TraceContext minted = TraceContext::Mint(/*sampled=*/true);
  const std::string wire = minted.ToTraceparent();
  ASSERT_EQ(wire.size(), 55u);
  const StatusOr<TraceContext> reparsed = TraceContext::Parse(wire);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().trace_id_hi, minted.trace_id_hi);
  EXPECT_EQ(reparsed.value().trace_id_lo, minted.trace_id_lo);
  EXPECT_TRUE(reparsed.value().sampled);
}

TEST(RequestContextTest, MintedContextsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext ctx = TraceContext::Mint(i % 2 == 0);
    EXPECT_TRUE(ctx.valid());
    EXPECT_NE(ctx.parent_span_id, 0u);
    EXPECT_EQ(ctx.sampled, i % 2 == 0);
    seen.insert(ctx.TraceIdHex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RequestContextTest, DefaultContextIsInvalid) {
  EXPECT_FALSE(TraceContext{}.valid());
}

}  // namespace
}  // namespace msq::obs
