// Tail-sampling stores: TraceStore retention/eviction, the Chrome-trace
// export shape, wide events and their JSONL form, exemplars, and the
// retention-priority policy in ServingTelemetry::CompleteRequest.
#include "obs/trace_store.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace msq::obs {
namespace {

RetainedTrace MakeTrace(std::uint64_t lo, RetainReason reason) {
  RetainedTrace trace;
  trace.trace_id_hi = 0xabcdef0011223344ull;
  trace.trace_id_lo = lo;
  trace.algorithm = "ce";
  trace.reason = reason;
  trace.queue_seconds = 0.002;
  trace.wall_seconds = 0.010;
  SpanRecord root;
  root.name = "ce";
  root.parent = -1;
  root.start_seconds = 0.0;
  root.end_seconds = 0.010;
  trace.profile.spans.push_back(root);
  return trace;
}

TEST(TraceStoreTest, FindAndContainsByTraceId) {
  TraceStore store(/*capacity=*/8);
  store.Retain(MakeTrace(1, RetainReason::kSlow));
  store.Retain(MakeTrace(2, RetainReason::kError));
  EXPECT_TRUE(store.Contains(0xabcdef0011223344ull, 1));
  EXPECT_TRUE(store.Contains(0xabcdef0011223344ull, 2));
  EXPECT_FALSE(store.Contains(0xabcdef0011223344ull, 3));
  const std::string hex = MakeTrace(2, RetainReason::kError).TraceIdHex();
  ASSERT_EQ(hex.size(), 32u);
  const std::optional<RetainedTrace> found = store.Find(hex);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->reason, RetainReason::kError);
  EXPECT_FALSE(store.Find("00000000000000000000000000000000").has_value());
}

TEST(TraceStoreTest, CapacityEvictsOldestFirst) {
  TraceStore store(/*capacity=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    store.Retain(MakeTrace(i, RetainReason::kHeadSampled));
  }
  const std::vector<RetainedTrace> snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().trace_id_lo, 7u);  // oldest survivor
  EXPECT_EQ(snapshot.back().trace_id_lo, 10u);
  EXPECT_EQ(store.retained_total(), 10u);
  EXPECT_EQ(store.evicted_total(), 6u);
  EXPECT_FALSE(store.Contains(0xabcdef0011223344ull, 1));
}

TEST(TraceStoreTest, ChromeExportHasRequestQueueAndProfileSpans) {
  const RetainedTrace trace = MakeTrace(5, RetainReason::kSlow);
  const std::string json = RetainedTraceChromeJson(trace);
  // Synthetic request root and queue_wait child, then the recorded span,
  // every event tagged with the trace id.
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ce\""), std::string::npos);
  EXPECT_NE(json.find(trace.TraceIdHex()), std::string::npos);
  // Valid Chrome trace shape: a bare JSON array of "X" events.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceStoreTest, TracezJsonListsRetainedSummaries) {
  TraceStore store;
  store.Retain(MakeTrace(9, RetainReason::kTruncated));
  const std::string json = TracezJson(store);
  EXPECT_NE(json.find("\"retained\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"retained_total\":1"), std::string::npos);
  EXPECT_NE(json.find(MakeTrace(9, RetainReason::kNone).TraceIdHex()),
            std::string::npos);
}

TEST(WideEventTest, ToJsonCarriesStageDecomposition) {
  WideEvent event;
  event.trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  event.request_id = "req-7";
  event.algorithm = "lbc";
  event.outcome = "completed";
  event.http_status = 200;
  event.sampled = true;
  event.trace_retained = true;
  event.queue_ms = 1.5;
  event.parse_ms = 0.25;
  event.execute_ms = 10.0;
  event.serialize_ms = 0.5;
  event.write_ms = 0.125;
  event.total_ms = 12.5;
  event.skyline_size = 42;
  event.returned = 10;
  const std::string json = event.ToJson();
  EXPECT_NE(json.find("\"trace_id\":\"4bf92f3577b34da6a3ce929d0e0e4736\""),
            std::string::npos);
  EXPECT_NE(json.find("\"id\":\"req-7\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_ms\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"parse_ms\":0.250"), std::string::npos);
  EXPECT_NE(json.find("\"execute_ms\":10.000"), std::string::npos);
  EXPECT_NE(json.find("\"serialize_ms\":0.500"), std::string::npos);
  EXPECT_NE(json.find("\"write_ms\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":12.500"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trace_retained\":true"), std::string::npos);
  EXPECT_NE(json.find("\"skyline_size\":42"), std::string::npos);
}

TEST(WideEventTest, LogIsBoundedAndCountsTotals) {
  WideEventLog log(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    WideEvent event;
    event.request_id = "r" + std::to_string(i);
    event.outcome = "completed";
    log.Append(std::move(event));
  }
  const std::vector<WideEvent> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot.front().request_id, "r2");
  EXPECT_EQ(snapshot.back().request_id, "r4");
  EXPECT_EQ(log.total(), 5u);
  EXPECT_NE(log.Json().find("\"total\":5"), std::string::npos);
  // JSONL: one object per line, newline-terminated.
  const std::string jsonl = log.Jsonl();
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(jsonl.find('['), std::string::npos);
}

TEST(ExemplarStoreTest, KeepsLatestExemplarPerBucket) {
  ExemplarStore store;
  store.Observe("exec.ce.latency_us_hist", 100, "aaaa");
  store.Observe("exec.ce.latency_us_hist", 120, "bbbb");  // same bucket
  store.Observe("exec.ce.latency_us_hist", 5000, "cccc");
  const std::size_t bucket_100 = Histogram::BucketIndex(100);
  const std::optional<ExemplarStore::Exemplar> first =
      store.Find("exec.ce.latency_us_hist", bucket_100);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->trace_id, "bbbb");
  EXPECT_EQ(first->value, 120u);
  EXPECT_FALSE(store.Find("exec.ce.latency_us_hist", 64).has_value());
  EXPECT_FALSE(store.Find("other_hist", bucket_100).has_value());
  EXPECT_FALSE(
      store.Find("exec.ce.latency_us_hist", Histogram::kBucketCount)
          .has_value());
}

TEST(ExemplarStoreTest, PrometheusBucketsCarryExemplarSuffix) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("exec.ce.latency_us_hist");
  hist->Observe(750);
  ExemplarStore exemplars;
  exemplars.Observe("exec.ce.latency_us_hist", 750,
                    "4bf92f3577b34da6a3ce929d0e0e4736");
  const std::string text = PrometheusText(registry, &exemplars);
  EXPECT_NE(
      text.find("# {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 750"),
      std::string::npos);
  // Without the store, the exposition is the plain 0.0.4 form.
  EXPECT_EQ(PrometheusText(registry).find("trace_id"), std::string::npos);
}

// --- CompleteRequest retention policy ---

struct TelemetryFixture {
  TelemetryFixture() {
    TelemetryConfig config;
    config.registry = &registry;
    config.slow_wall_seconds = 0.050;
    config.head_sample_every = 1;  // HeadSample() always true when asked
    telemetry = std::make_unique<ServingTelemetry>(config);
  }
  MetricsRegistry registry;
  std::unique_ptr<ServingTelemetry> telemetry;
};

FlightRecord FastOkRecord() {
  FlightRecord record;
  record.wall_seconds = 0.001;
  return record;
}

TEST(TailSamplingTest, RetentionPriorityErrorOverTruncatedOverSlow) {
  TelemetryFixture fx;
  const TraceContext ctx = TraceContext::Mint(/*sampled=*/true);
  FlightRecord record = FastOkRecord();
  record.status_code = 13;      // error wins over everything
  record.truncation = 4;
  record.wall_seconds = 1.0;    // also slow
  EXPECT_EQ(fx.telemetry->CompleteRequest(ctx, record, 0.0, "ce", {}),
            RetainReason::kError);
  record.status_code = 0;
  EXPECT_EQ(fx.telemetry->CompleteRequest(ctx, record, 0.0, "ce", {}),
            RetainReason::kTruncated);
  record.truncation = 0;
  EXPECT_EQ(fx.telemetry->CompleteRequest(ctx, record, 0.0, "ce", {}),
            RetainReason::kSlow);
  record.wall_seconds = 0.001;
  EXPECT_EQ(fx.telemetry->CompleteRequest(ctx, record, 0.0, "ce", {}),
            RetainReason::kHeadSampled);
  EXPECT_EQ(fx.telemetry->trace_store().retained_total(), 4u);
}

TEST(TailSamplingTest, FastUnsampledRequestsAreDropped) {
  TelemetryFixture fx;
  const TraceContext ctx = TraceContext::Mint(/*sampled=*/false);
  EXPECT_EQ(
      fx.telemetry->CompleteRequest(ctx, FastOkRecord(), 0.0, "ce", {}),
      RetainReason::kNone);
  EXPECT_EQ(fx.telemetry->trace_store().retained_total(), 0u);
}

TEST(TailSamplingTest, SlowQueryLogFedWithoutReexecution) {
  TelemetryFixture fx;
  const TraceContext ctx = TraceContext::Mint(/*sampled=*/false);
  FlightRecord record = FastOkRecord();
  record.wall_seconds = 0.200;  // past the 50 ms threshold
  QueryProfile profile;
  SpanRecord span;
  span.name = "ce";
  span.end_seconds = 0.2;
  profile.spans.push_back(span);
  EXPECT_EQ(fx.telemetry->CompleteRequest(ctx, record, 0.0, "ce",
                                          std::move(profile)),
            RetainReason::kSlow);
  const std::vector<SlowQueryRecord> slow = fx.telemetry->SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  // The log holds this run's own profile — capture never re-ran anything.
  ASSERT_EQ(slow[0].profile.spans.size(), 1u);
  EXPECT_EQ(slow[0].profile.spans[0].name, "ce");
  EXPECT_DOUBLE_EQ(slow[0].recapture_wall_seconds, 0.200);
}

TEST(TailSamplingTest, HeadSampleCoinHonorsRate) {
  TelemetryConfig config;
  MetricsRegistry registry;
  config.registry = &registry;
  config.head_sample_every = 4;
  ServingTelemetry telemetry(config);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += telemetry.HeadSample();
  EXPECT_EQ(sampled, 25);

  TelemetryConfig off;
  off.registry = &registry;
  off.head_sample_every = 0;
  ServingTelemetry no_heads(off);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(no_heads.HeadSample());
}

}  // namespace
}  // namespace msq::obs
