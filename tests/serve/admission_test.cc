// AdmissionController — watermarks, retry hints, outcome classification,
// and the conservation identities the soak harness gates on.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/admission.h"

namespace msq::serve {
namespace {

AdmissionConfig TestConfig(obs::MetricsRegistry* registry,
                           std::size_t max_pending = 4,
                           double max_cost = 16.0) {
  AdmissionConfig config;
  config.max_pending = max_pending;
  config.max_pending_cost = max_cost;
  config.registry = registry;
  return config;
}

TEST(AdmissionTest, CostEstimateScalesWithAlgorithmAndSources) {
  ServeRequest lbc;
  lbc.algorithm = Algorithm::kLbc;
  lbc.sources.resize(3);
  ServeRequest naive = lbc;
  naive.algorithm = Algorithm::kNaive;
  ServeRequest ce = lbc;
  ce.algorithm = Algorithm::kCe;
  EXPECT_GT(EstimateCost(naive), EstimateCost(ce));
  EXPECT_GT(EstimateCost(ce), EstimateCost(lbc));
  ServeRequest wide = lbc;
  wide.sources.resize(6);
  EXPECT_GT(EstimateCost(wide), EstimateCost(lbc));
}

TEST(AdmissionTest, PendingWatermarkSheds) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry, /*max_pending=*/2,
                                           /*max_cost=*/1e9));
  double retry = 0.0;
  admission.CountReceived();
  EXPECT_TRUE(admission.TryAdmit(1.0, &retry));
  admission.CountReceived();
  EXPECT_TRUE(admission.TryAdmit(1.0, &retry));
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(1.0, &retry));  // over the watermark
  EXPECT_GT(retry, 0.0);
  EXPECT_EQ(admission.shed(), 1u);
  EXPECT_EQ(admission.pending(), 2u);

  // Finishing one frees the slot.
  admission.Finish(RequestOutcome::kCompleted, 1.0);
  admission.CountReceived();
  EXPECT_TRUE(admission.TryAdmit(1.0, &retry));
  admission.Finish(RequestOutcome::kCompleted, 1.0);
  admission.Finish(RequestOutcome::kTruncated, 1.0);
  EXPECT_EQ(admission.pending(), 0u);
  EXPECT_EQ(admission.CheckConservation(), "");
}

TEST(AdmissionTest, CostWatermarkSheds) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry, /*max_pending=*/100,
                                           /*max_cost=*/10.0));
  double retry = 0.0;
  admission.CountReceived();
  EXPECT_TRUE(admission.TryAdmit(6.0, &retry));
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(6.0, &retry));  // 12 > 10
  admission.CountReceived();
  EXPECT_TRUE(admission.TryAdmit(3.0, &retry));  // 9 <= 10 still fits
  admission.Finish(RequestOutcome::kCompleted, 6.0);
  admission.Finish(RequestOutcome::kFailed, 3.0);
  EXPECT_EQ(admission.CheckConservation(), "");
}

TEST(AdmissionTest, RetryHintGrowsWithOverload) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry, /*max_pending=*/1,
                                           /*max_cost=*/1.0));
  double retry_light = 0.0;
  double retry_heavy = 0.0;
  admission.CountReceived();
  ASSERT_TRUE(admission.TryAdmit(1.0, &retry_light));
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(1.0, &retry_light));
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(100.0, &retry_heavy));
  EXPECT_GE(retry_heavy, retry_light);
  admission.Finish(RequestOutcome::kCompleted, 1.0);
}

TEST(AdmissionTest, ClassifyCoversEveryOutcome) {
  SkylineResult ok;
  EXPECT_EQ(AdmissionController::Classify(ok), RequestOutcome::kCompleted);

  SkylineResult truncated;
  truncated.truncated = true;
  truncated.truncation_reason = StatusCode::kDeadlineExceeded;
  EXPECT_EQ(AdmissionController::Classify(truncated),
            RequestOutcome::kTruncated);

  SkylineResult failed;
  failed.status = Status::IoError("disk");
  EXPECT_EQ(AdmissionController::Classify(failed), RequestOutcome::kFailed);

  // A failed result that also carries the truncated flag counts as failed:
  // the error status is the stronger statement.
  SkylineResult failed_truncated;
  failed_truncated.status = Status::IoError("disk");
  failed_truncated.truncated = true;
  EXPECT_EQ(AdmissionController::Classify(failed_truncated),
            RequestOutcome::kFailed);
}

TEST(AdmissionTest, ConservationDetectsViolation) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry));
  admission.CountReceived();
  // Received but never resolved: the identity must flag it.
  EXPECT_NE(admission.CheckConservation(), "");
}

TEST(AdmissionTest, ConservationHoldsUnderConcurrency) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry, /*max_pending=*/8,
                                           /*max_cost=*/24.0));
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&admission, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        admission.CountReceived();
        if (i % 7 == 6) {  // a slice never reaches admission
          admission.CountRejected();
          continue;
        }
        const double cost = 1.0 + static_cast<double>((t + i) % 3);
        double retry = 0.0;
        if (!admission.TryAdmit(cost, &retry)) continue;  // counted shed
        switch ((t + i) % 3) {
          case 0:
            admission.Finish(RequestOutcome::kCompleted, cost);
            break;
          case 1:
            admission.Finish(RequestOutcome::kTruncated, cost);
            break;
          default:
            admission.Finish(RequestOutcome::kFailed, cost);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admission.received(), kThreads * kPerThread);
  EXPECT_EQ(admission.pending(), 0u);
  EXPECT_EQ(admission.CheckConservation(), "");
}

TEST(AdmissionTest, MetricsRegistryCarriesTheCounters) {
  obs::MetricsRegistry registry;
  AdmissionController admission(TestConfig(&registry));
  admission.CountReceived();
  double retry = 0.0;
  ASSERT_TRUE(admission.TryAdmit(2.0, &retry));
  admission.Finish(RequestOutcome::kCompleted, 2.0);
  EXPECT_EQ(registry.counter(metric::kServeReceived)->value(), 1u);
  EXPECT_EQ(registry.counter(metric::kServeAdmitted)->value(), 1u);
  EXPECT_EQ(registry.counter(metric::kServeCompleted)->value(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge(metric::kServePending)->value(), 0.0);
}

TEST(AdmissionTest, MutationCostsAreFlatAndOutweighLbc) {
  ServeRequest update;
  update.op = ServeOp::kUpdateEdge;
  ServeRequest insert;
  insert.op = ServeOp::kInsertObject;
  ServeRequest del;
  del.op = ServeOp::kDeleteObject;
  ServeRequest lbc;
  lbc.algorithm = Algorithm::kLbc;
  lbc.sources.resize(1);
  // Object churn COW-rewrites an R-tree path; an edge update only touches
  // the graph. Both cost more than the cheapest query.
  EXPECT_GT(EstimateCost(insert), EstimateCost(update));
  EXPECT_DOUBLE_EQ(EstimateCost(insert), EstimateCost(del));
  EXPECT_GT(EstimateCost(update), EstimateCost(lbc));
  // Flat: the query-side source fan-out does not apply to mutations.
  ServeRequest update_with_junk = update;
  EXPECT_DOUBLE_EQ(EstimateCost(update_with_junk), EstimateCost(update));
}

TEST(AdmissionTest, RetryHintIsCappedUnderDeepOverload) {
  obs::MetricsRegistry registry;
  AdmissionConfig config = TestConfig(&registry, /*max_pending=*/1,
                                      /*max_cost=*/1.0);
  config.retry_after_base_ms = 25.0;
  config.retry_after_max_ms = 500.0;
  AdmissionController admission(config);
  double retry = 0.0;
  admission.CountReceived();
  ASSERT_TRUE(admission.TryAdmit(1.0, &retry));
  // A shed request whose cost alone is 1000x the watermark would, unclamped,
  // get a 25s hint; the cap holds it at the ceiling.
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(1000.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 500.0);
  // Mild overload stays below the cap and above the base.
  double mild = 0.0;
  admission.CountReceived();
  EXPECT_FALSE(admission.TryAdmit(2.0, &mild));
  EXPECT_GE(mild, config.retry_after_base_ms);
  EXPECT_LE(mild, 500.0);
  EXPECT_LT(mild, 500.0);
  admission.Finish(RequestOutcome::kCompleted, 1.0);
  EXPECT_EQ(admission.CheckConservation(), "");
}

}  // namespace
}  // namespace msq::serve
