// Deterministic replay of the seed corpus in tests/serve/corpus/: every
// ok_* file must parse into a cap-respecting ServeRequest, every bad_*
// file must be rejected with kInvalidArgument, and every raw_* file must
// be handled without tripping the parser's bounds-check machinery. The
// same corpus seeds the mutation fuzzer (tools/fuzz_repro json); this
// test keeps the expectations honest in CI without fuzz iterations.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/request.h"

#ifndef MSQ_SERVE_CORPUS_DIR
#error "MSQ_SERVE_CORPUS_DIR must be defined by the build"
#endif

#define MSQ_STRINGIFY_INNER(x) #x
#define MSQ_STRINGIFY(x) MSQ_STRINGIFY_INNER(x)

namespace msq::serve {
namespace {

std::string CorpusDir() { return MSQ_STRINGIFY(MSQ_SERVE_CORPUS_DIR); }

std::vector<std::string> ListCorpus() {
  std::vector<std::string> names;
  DIR* dir = ::opendir(CorpusDir().c_str());
  if (dir == nullptr) return names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (!name.empty() && name[0] != '.') names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

std::string ReadFileBytes(const std::string& path) {
  std::string data;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return data;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  std::fclose(f);
  return data;
}

// Same cap checks the fuzzer enforces: anything the strict parser accepts
// must already sit inside the serving-layer resource bounds.
testing::AssertionResult RespectsCaps(const ServeRequest& request) {
  if (request.sources.empty() || request.sources.size() > kMaxSources) {
    return testing::AssertionFailure()
           << "source count " << request.sources.size();
  }
  for (const Location& source : request.sources) {
    if (source.edge >= kInvalidEdge) {
      return testing::AssertionFailure() << "edge " << source.edge;
    }
    if (!(source.offset >= 0.0)) {  // also catches NaN
      return testing::AssertionFailure() << "offset " << source.offset;
    }
  }
  if (request.lbc_source_index >= request.sources.size() &&
      request.lbc_source_index != 0) {
    return testing::AssertionFailure()
           << "lbc_source " << request.lbc_source_index;
  }
  if (request.k > kMaxK) {
    return testing::AssertionFailure() << "k " << request.k;
  }
  if (request.id.size() > kMaxIdBytes) {
    return testing::AssertionFailure() << "id bytes " << request.id.size();
  }
  if (request.deadline_ms < 0.0 || request.deadline_ms > kMaxDeadlineMs) {
    return testing::AssertionFailure()
           << "deadline_ms " << request.deadline_ms;
  }
  return testing::AssertionSuccess();
}

TEST(CorpusTest, CorpusIsPresentAndCoversAllThreeClasses) {
  const std::vector<std::string> names = ListCorpus();
  ASSERT_GE(names.size(), 20u) << "corpus missing at " << CorpusDir();
  std::size_t ok = 0, bad = 0, raw = 0;
  for (const std::string& name : names) {
    if (name.rfind("ok_", 0) == 0) ++ok;
    if (name.rfind("bad_", 0) == 0) ++bad;
    if (name.rfind("raw_", 0) == 0) ++raw;
  }
  EXPECT_GE(ok, 3u);
  EXPECT_GE(bad, 10u);
  EXPECT_GE(raw, 3u);
  EXPECT_EQ(ok + bad + raw, names.size()) << "unclassified corpus file";
}

TEST(CorpusTest, EveryFileMeetsItsPrefixExpectation) {
  for (const std::string& name : ListCorpus()) {
    const std::string data = ReadFileBytes(CorpusDir() + "/" + name);
    SCOPED_TRACE(name);
    ASSERT_FALSE(data.empty()) << "unreadable corpus file";
    const StatusOr<ServeRequest> request =
        ParseServeRequestText(std::string_view(data));
    if (name.rfind("ok_", 0) == 0) {
      ASSERT_TRUE(request.ok()) << request.status().ToString();
      EXPECT_TRUE(RespectsCaps(request.value()));
    } else if (name.rfind("bad_", 0) == 0) {
      ASSERT_FALSE(request.ok());
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
    } else {
      // raw_*: outcome unconstrained, but an accepted request must still
      // respect the caps, and an error must be a structured 4xx-class
      // status, not a crash or a success smuggling invalid state.
      if (request.ok()) {
        EXPECT_TRUE(RespectsCaps(request.value()));
      } else {
        EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(CorpusTest, OkFilesSurviveTighterLimitsOrFailCleanly) {
  // Shrinking the parse limits must never change an accept into anything
  // other than a clean kInvalidArgument rejection.
  JsonLimits tight;
  tight.max_bytes = 96;
  tight.max_depth = 4;
  tight.max_values = 24;
  for (const std::string& name : ListCorpus()) {
    if (name.rfind("ok_", 0) != 0) continue;
    const std::string data = ReadFileBytes(CorpusDir() + "/" + name);
    const StatusOr<JsonValue> json = ParseJson(data, tight);
    if (!json.ok()) {
      EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument) << name;
      continue;
    }
    const StatusOr<ServeRequest> request = ParseServeRequest(json.value());
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
          << name;
    }
  }
}

}  // namespace
}  // namespace msq::serve
