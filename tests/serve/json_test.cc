// serve::ParseJson — the strict, bounded parser behind the front door.
// Every rejection case here is something RFC 8259 rejects or a bound the
// serving layer imposes; every acceptance case checks the parsed value,
// not just the ok() bit.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"

namespace msq::serve {
namespace {

StatusOr<JsonValue> P(const std::string& text) { return ParseJson(text); }

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(P("null").value().is_null());
  EXPECT_TRUE(P("true").value().AsBool());
  EXPECT_FALSE(P("false").value().AsBool());
  EXPECT_DOUBLE_EQ(P("42").value().AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(P("-0.5e2").value().AsNumber(), -50.0);
  EXPECT_DOUBLE_EQ(P("0").value().AsNumber(), 0.0);
  EXPECT_EQ(P("\"hi\"").value().AsString(), "hi");
}

TEST(JsonTest, ParsesContainersWithWhitespace) {
  const JsonValue v =
      P(" { \"a\" : [ 1 , 2.5 , true , null ] , \"b\" : { } } ").value();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 4u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.5);
  EXPECT_TRUE(a->AsArray()[2].AsBool());
  EXPECT_TRUE(a->AsArray()[3].is_null());
  ASSERT_NE(v.Find("b"), nullptr);
  EXPECT_TRUE(v.Find("b")->is_object());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  const JsonValue v = P("{\"z\":1,\"a\":2,\"m\":3}").value();
  ASSERT_EQ(v.AsObject().size(), 3u);
  EXPECT_EQ(v.AsObject()[0].first, "z");
  EXPECT_EQ(v.AsObject()[1].first, "a");
  EXPECT_EQ(v.AsObject()[2].first, "m");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(P("\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\t\"").value().AsString(),
            "a\"b\\c/d\b\f\n\r\t");
  // BMP escape, and an astral pair (U+1F600) via surrogates.
  EXPECT_EQ(P("\"\\u0041\\u00e9\"").value().AsString(), "A\xc3\xa9");
  EXPECT_EQ(P("\"\\ud83d\\ude00\"").value().AsString(),
            "\xf0\x9f\x98\x80");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(P("\"h\xc3\xa9llo\"").value().AsString(), "h\xc3\xa9llo");
}

TEST(JsonTest, RejectsRfcViolations) {
  const char* cases[] = {
      "",              // empty input
      "  ",            // whitespace only
      "{",             // unterminated object
      "[1,2",          // unterminated array
      "[1,]",          // trailing comma
      "{\"a\":1,}",    // trailing comma in object
      "{'a':1}",       // single quotes
      "{a:1}",         // unquoted key
      "{\"a\" 1}",     // missing colon
      "01",            // leading zero
      "+1",            // leading plus
      "1.",            // bare decimal point
      ".5",            // missing integer part
      "1e",            // empty exponent
      "NaN",           // not a JSON token
      "Infinity",      // not a JSON token
      "truth",         // keyword prefix with garbage
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"tab\tliteral\"",  // unescaped control character
      "\"\\ud800\"",       // lone high surrogate
      "\"\\ude00\"",       // lone low surrogate
      "\"\\ud83d x\"",     // high surrogate without a pair
      "{\"a\":1} tail",    // trailing garbage
      "[1] [2]",           // two top-level values
      "{\"a\":1,\"a\":2}", // duplicate key
  };
  for (const char* text : cases) {
    const StatusOr<JsonValue> result = P(text);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

TEST(JsonTest, RejectsOverlargeNumbers) {
  // 1e999 overflows double to infinity — must be rejected, not accepted
  // as inf.
  EXPECT_FALSE(P("1e999").ok());
  EXPECT_FALSE(P("-1e999").ok());
  // Largest finite double still parses.
  EXPECT_TRUE(std::isfinite(P("1.7976931348623157e308").value().AsNumber()));
}

TEST(JsonTest, ByteLimit) {
  JsonLimits limits;
  limits.max_bytes = 8;
  EXPECT_TRUE(ParseJson("[1,2,3]", limits).ok());
  EXPECT_FALSE(ParseJson("[1,2,3,4]", limits).ok());
  EXPECT_EQ(ParseJson("[1,2,3,4]", limits).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JsonTest, DepthLimit) {
  JsonLimits limits;
  limits.max_depth = 4;
  EXPECT_TRUE(ParseJson("[[[[1]]]]", limits).ok());
  EXPECT_FALSE(ParseJson("[[[[[1]]]]]", limits).ok());
  // Nesting through objects counts too: five levels pass (the innermost
  // empty object sits at depth 4), six do not.
  EXPECT_TRUE(ParseJson("{\"a\":{\"a\":{\"a\":{\"a\":{}}}}}", limits).ok());
  EXPECT_FALSE(
      ParseJson("{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{}}}}}}", limits).ok());
}

TEST(JsonTest, ValueCountLimit) {
  JsonLimits limits;
  limits.max_values = 4;
  EXPECT_TRUE(ParseJson("[1,2,3]", limits).ok());  // array + 3 numbers
  EXPECT_FALSE(ParseJson("[1,2,3,4]", limits).ok());
}

TEST(JsonTest, ErrorsCarryByteOffset) {
  const StatusOr<JsonValue> result = P("{\"a\": @}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("at byte"), std::string::npos);
}

TEST(JsonTest, AppendJsonStringEscapes) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\u0001\"");
  // Round trip: everything the encoder emits, the parser accepts.
  EXPECT_EQ(P(out).value().AsString(), "a\"b\\c\n\x01");
}

TEST(JsonTest, AppendJsonNumberForms) {
  std::string out;
  AppendJsonNumber(&out, 42.0);
  EXPECT_EQ(out, "42");
  out.clear();
  AppendJsonNumber(&out, 0.25);
  EXPECT_DOUBLE_EQ(P(out).value().AsNumber(), 0.25);
  out.clear();
  AppendJsonNumber(&out, 1.0 / 3.0);  // round-trips at %.17g
  EXPECT_DOUBLE_EQ(P(out).value().AsNumber(), 1.0 / 3.0);
}

}  // namespace
}  // namespace msq::serve
