// serve::ParseServeRequest — the strict request schema over the JSON
// parser: unknown fields rejected at every level, integrality and range
// enforced, and the response encoders emit JSON the parser accepts.
#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/request.h"

namespace msq::serve {
namespace {

StatusOr<ServeRequest> P(const std::string& text) {
  return ParseServeRequestText(text);
}

TEST(RequestTest, MinimalRequest) {
  const ServeRequest request = P("{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]}").value();
  EXPECT_EQ(request.algorithm, Algorithm::kLbc);
  ASSERT_EQ(request.sources.size(), 1u);
  EXPECT_EQ(request.sources[0].edge, 0u);
  EXPECT_DOUBLE_EQ(request.sources[0].offset, 0.0);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 0.0);
  EXPECT_EQ(request.page_budget, 0u);
  EXPECT_EQ(request.k, 0u);
  EXPECT_TRUE(request.id.empty());
}

TEST(RequestTest, FullRequest) {
  const ServeRequest request =
      P("{\"algo\":\"ce\",\"sources\":[{\"edge\":3,\"offset\":0.5},"
        "{\"edge\":9,\"offset\":0.25}],\"lbc_source\":1,"
        "\"limits\":{\"deadline_ms\":250,\"page_budget\":1000},"
        "\"k\":16,\"id\":\"req-1\"}")
          .value();
  EXPECT_EQ(request.algorithm, Algorithm::kCe);
  ASSERT_EQ(request.sources.size(), 2u);
  EXPECT_EQ(request.sources[1].edge, 9u);
  EXPECT_DOUBLE_EQ(request.sources[1].offset, 0.25);
  EXPECT_EQ(request.lbc_source_index, 1u);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.page_budget, 1000u);
  EXPECT_EQ(request.k, 16u);
  EXPECT_EQ(request.id, "req-1");
}

TEST(RequestTest, AllAlgorithmsParse) {
  const struct {
    const char* name;
    Algorithm algorithm;
  } cases[] = {{"naive", Algorithm::kNaive},
               {"ce", Algorithm::kCe},
               {"edc", Algorithm::kEdc},
               {"lbc", Algorithm::kLbc}};
  for (const auto& c : cases) {
    const std::string text = std::string("{\"algo\":\"") + c.name +
                             "\",\"sources\":[{\"edge\":0}]}";
    EXPECT_EQ(P(text).value().algorithm, c.algorithm) << c.name;
  }
}

TEST(RequestTest, Rejections) {
  const char* cases[] = {
      "{}",                                           // missing everything
      "{\"algo\":\"lbc\"}",                           // missing sources
      "{\"sources\":[{\"edge\":0}]}",                 // missing algo
      "{\"algo\":\"lbc\",\"sources\":[]}",            // empty sources
      "{\"algo\":\"zzz\",\"sources\":[{\"edge\":0}]}",    // unknown algo
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"x\":1}",  // unknown field
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0,\"y\":1}]}",  // unknown entry field
      "{\"algo\":\"lbc\",\"sources\":[{\"offset\":1}]}",        // missing edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":1.5}]}",        // fractional edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":-1}]}",         // negative edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0,\"offset\":-0.1}]}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"k\":1.5}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"k\":4097}",  // > kMaxK
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":0}}",                          // zero deadline
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":-5}}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":600001}}",                     // > max
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"nope\":1}}",                                 // unknown limit
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"lbc_source\":1}",
      "[\"algo\",\"lbc\"]",                                       // not an object
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]",             // bad JSON
  };
  for (const char* text : cases) {
    const StatusOr<ServeRequest> result = P(text);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

TEST(RequestTest, SourceCountCap) {
  std::string many = "{\"algo\":\"lbc\",\"sources\":[";
  for (std::size_t i = 0; i <= kMaxSources; ++i) {
    if (i > 0) many += ",";
    many += "{\"edge\":0}";
  }
  many += "]}";
  EXPECT_FALSE(P(many).ok());  // kMaxSources + 1 entries
}

TEST(RequestTest, IdLengthCap) {
  const std::string id(kMaxIdBytes + 1, 'x');
  EXPECT_FALSE(
      P("{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"id\":\"" + id +
        "\"}")
          .ok());
}

TEST(RequestTest, HttpStatusMapping) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 408);
  EXPECT_EQ(HttpStatusFor(StatusCode::kResourceExhausted), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnavailable), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kIoError), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kCorruption), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInternal), 500);
}

TEST(RequestTest, ResultResponseRoundTripsThroughParser) {
  ServeRequest request;
  request.id = "round \"trip\"";
  SkylineResult result;
  result.truncated = true;
  result.truncation_reason = StatusCode::kDeadlineExceeded;
  SkylineEntry entry;
  entry.object = 7;
  entry.vector = {0.125, 2.5};
  result.skyline.push_back(entry);
  result.stats.network_pages = 3;
  result.stats.index_pages = 1;
  result.stats.settled_nodes = 42;

  const std::string body =
      EncodeResultResponse(request, result, /*returned=*/1,
                           /*queue_ms=*/0.5, /*wall_ms=*/1.5);
  const JsonValue json = ParseJson(body).value();
  EXPECT_EQ(json.Find("id")->AsString(), "round \"trip\"");
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  EXPECT_TRUE(json.Find("truncated")->AsBool());
  EXPECT_EQ(json.Find("truncation_reason")->AsString(),
            "DEADLINE_EXCEEDED");
  ASSERT_EQ(json.Find("skyline")->AsArray().size(), 1u);
  const JsonValue& first = json.Find("skyline")->AsArray()[0];
  EXPECT_DOUBLE_EQ(first.Find("object")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(first.Find("vector")->AsArray()[0].AsNumber(), 0.125);
  EXPECT_DOUBLE_EQ(json.Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(json.Find("total")->AsNumber(), 1.0);
  const JsonValue* stats = json.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->Find("network_pages")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(stats->Find("settled_nodes")->AsNumber(), 42.0);
}

TEST(RequestTest, ErrorResponseRoundTripsThroughParser) {
  const std::string body = EncodeErrorResponse(
      "id-1", StatusCode::kResourceExhausted, "overloaded",
      /*retry_after_ms=*/75.0);
  const JsonValue json = ParseJson(body).value();
  EXPECT_EQ(json.Find("id")->AsString(), "id-1");
  const JsonValue* error = json.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->AsString(), "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(error->Find("http")->AsNumber(), 503.0);
  EXPECT_EQ(error->Find("message")->AsString(), "overloaded");
  EXPECT_DOUBLE_EQ(json.Find("retry_after_ms")->AsNumber(), 75.0);
}

}  // namespace
}  // namespace msq::serve
