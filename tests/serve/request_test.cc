// serve::ParseServeRequest — the strict request schema over the JSON
// parser: unknown fields rejected at every level, integrality and range
// enforced, and the response encoders emit JSON the parser accepts.
#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/request.h"

namespace msq::serve {
namespace {

StatusOr<ServeRequest> P(const std::string& text) {
  return ParseServeRequestText(text);
}

TEST(RequestTest, MinimalRequest) {
  const ServeRequest request = P("{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]}").value();
  EXPECT_EQ(request.algorithm, Algorithm::kLbc);
  ASSERT_EQ(request.sources.size(), 1u);
  EXPECT_EQ(request.sources[0].edge, 0u);
  EXPECT_DOUBLE_EQ(request.sources[0].offset, 0.0);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 0.0);
  EXPECT_EQ(request.page_budget, 0u);
  EXPECT_EQ(request.k, 0u);
  EXPECT_TRUE(request.id.empty());
}

TEST(RequestTest, FullRequest) {
  const ServeRequest request =
      P("{\"algo\":\"ce\",\"sources\":[{\"edge\":3,\"offset\":0.5},"
        "{\"edge\":9,\"offset\":0.25}],\"lbc_source\":1,"
        "\"limits\":{\"deadline_ms\":250,\"page_budget\":1000},"
        "\"k\":16,\"id\":\"req-1\"}")
          .value();
  EXPECT_EQ(request.algorithm, Algorithm::kCe);
  ASSERT_EQ(request.sources.size(), 2u);
  EXPECT_EQ(request.sources[1].edge, 9u);
  EXPECT_DOUBLE_EQ(request.sources[1].offset, 0.25);
  EXPECT_EQ(request.lbc_source_index, 1u);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.page_budget, 1000u);
  EXPECT_EQ(request.k, 16u);
  EXPECT_EQ(request.id, "req-1");
}

TEST(RequestTest, AllAlgorithmsParse) {
  const struct {
    const char* name;
    Algorithm algorithm;
  } cases[] = {{"naive", Algorithm::kNaive},
               {"ce", Algorithm::kCe},
               {"edc", Algorithm::kEdc},
               {"lbc", Algorithm::kLbc}};
  for (const auto& c : cases) {
    const std::string text = std::string("{\"algo\":\"") + c.name +
                             "\",\"sources\":[{\"edge\":0}]}";
    EXPECT_EQ(P(text).value().algorithm, c.algorithm) << c.name;
  }
}

TEST(RequestTest, Rejections) {
  const char* cases[] = {
      "{}",                                           // missing everything
      "{\"algo\":\"lbc\"}",                           // missing sources
      "{\"sources\":[{\"edge\":0}]}",                 // missing algo
      "{\"algo\":\"lbc\",\"sources\":[]}",            // empty sources
      "{\"algo\":\"zzz\",\"sources\":[{\"edge\":0}]}",    // unknown algo
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"x\":1}",  // unknown field
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0,\"y\":1}]}",  // unknown entry field
      "{\"algo\":\"lbc\",\"sources\":[{\"offset\":1}]}",        // missing edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":1.5}]}",        // fractional edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":-1}]}",         // negative edge
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0,\"offset\":-0.1}]}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"k\":1.5}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"k\":4097}",  // > kMaxK
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":0}}",                          // zero deadline
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":-5}}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"deadline_ms\":600001}}",                     // > max
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"limits\":{\"nope\":1}}",                                 // unknown limit
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"lbc_source\":1}",
      "[\"algo\",\"lbc\"]",                                       // not an object
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]",             // bad JSON
  };
  for (const char* text : cases) {
    const StatusOr<ServeRequest> result = P(text);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

TEST(RequestTest, SourceCountCap) {
  std::string many = "{\"algo\":\"lbc\",\"sources\":[";
  for (std::size_t i = 0; i <= kMaxSources; ++i) {
    if (i > 0) many += ",";
    many += "{\"edge\":0}";
  }
  many += "]}";
  EXPECT_FALSE(P(many).ok());  // kMaxSources + 1 entries
}

TEST(RequestTest, IdLengthCap) {
  const std::string id(kMaxIdBytes + 1, 'x');
  EXPECT_FALSE(
      P("{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],\"id\":\"" + id +
        "\"}")
          .ok());
}

TEST(RequestTest, HttpStatusMapping) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 408);
  EXPECT_EQ(HttpStatusFor(StatusCode::kResourceExhausted), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnavailable), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kIoError), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kCorruption), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInternal), 500);
}

TEST(RequestTest, ResultResponseRoundTripsThroughParser) {
  ServeRequest request;
  request.id = "round \"trip\"";
  SkylineResult result;
  result.truncated = true;
  result.truncation_reason = StatusCode::kDeadlineExceeded;
  SkylineEntry entry;
  entry.object = 7;
  entry.vector = {0.125, 2.5};
  result.skyline.push_back(entry);
  result.stats.network_pages = 3;
  result.stats.index_pages = 1;
  result.stats.settled_nodes = 42;

  const std::string body =
      EncodeResultResponse(request, result, /*returned=*/1,
                           /*queue_ms=*/0.5, /*wall_ms=*/1.5);
  const JsonValue json = ParseJson(body).value();
  EXPECT_EQ(json.Find("id")->AsString(), "round \"trip\"");
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  EXPECT_TRUE(json.Find("truncated")->AsBool());
  EXPECT_EQ(json.Find("truncation_reason")->AsString(),
            "DEADLINE_EXCEEDED");
  ASSERT_EQ(json.Find("skyline")->AsArray().size(), 1u);
  const JsonValue& first = json.Find("skyline")->AsArray()[0];
  EXPECT_DOUBLE_EQ(first.Find("object")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(first.Find("vector")->AsArray()[0].AsNumber(), 0.125);
  EXPECT_DOUBLE_EQ(json.Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(json.Find("total")->AsNumber(), 1.0);
  const JsonValue* stats = json.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->Find("network_pages")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(stats->Find("settled_nodes")->AsNumber(), 42.0);
}

TEST(RequestTest, ErrorResponseRoundTripsThroughParser) {
  const std::string body = EncodeErrorResponse(
      "id-1", StatusCode::kResourceExhausted, "overloaded",
      /*retry_after_ms=*/75.0);
  const JsonValue json = ParseJson(body).value();
  EXPECT_EQ(json.Find("id")->AsString(), "id-1");
  const JsonValue* error = json.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->AsString(), "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(error->Find("http")->AsNumber(), 503.0);
  EXPECT_EQ(error->Find("message")->AsString(), "overloaded");
  EXPECT_DOUBLE_EQ(json.Find("retry_after_ms")->AsNumber(), 75.0);
}

TEST(RequestTest, ParsesUpdateEdgeMutation) {
  const ServeRequest request =
      P("{\"op\":\"update_edge\",\"edge\":3,\"length\":12.5,"
        "\"id\":\"m-1\"}")
          .value();
  EXPECT_EQ(request.op, ServeOp::kUpdateEdge);
  EXPECT_EQ(request.edge, 3u);
  EXPECT_DOUBLE_EQ(request.length, 12.5);
  EXPECT_EQ(request.id, "m-1");
  // length 0 is the explicit "reset to Euclidean" sentinel, not an error.
  EXPECT_DOUBLE_EQ(
      P("{\"op\":\"update_edge\",\"edge\":0,\"length\":0}")
          .value()
          .length,
      0.0);
}

TEST(RequestTest, ParsesInsertObjectMutation) {
  const ServeRequest request =
      P("{\"op\":\"insert_object\",\"edge\":7,\"offset\":0.25}")
          .value();
  EXPECT_EQ(request.op, ServeOp::kInsertObject);
  EXPECT_EQ(request.edge, 7u);
  EXPECT_DOUBLE_EQ(request.offset, 0.25);
  // offset defaults to 0 (the edge head).
  EXPECT_DOUBLE_EQ(
      P("{\"op\":\"insert_object\",\"edge\":7}").value().offset, 0.0);
}

TEST(RequestTest, ParsesDeleteObjectMutation) {
  const ServeRequest request =
      P("{\"op\":\"delete_object\",\"object\":42}").value();
  EXPECT_EQ(request.op, ServeOp::kDeleteObject);
  EXPECT_EQ(request.object, 42u);
}

TEST(RequestTest, MutationRejections) {
  const char* cases[] = {
      // op must be a known string.
      "{\"op\":\"compact\",\"edge\":0}",
      "{\"op\":7,\"edge\":0}",
      // Missing required fields per op.
      "{\"op\":\"update_edge\",\"edge\":0}",           // no length
      "{\"op\":\"update_edge\",\"length\":1}",         // no edge
      "{\"op\":\"insert_object\",\"offset\":0.5}",     // no edge
      "{\"op\":\"delete_object\"}",                      // no object
      // Forbidden fields per op.
      "{\"op\":\"update_edge\",\"edge\":0,\"length\":1,"
      "\"offset\":0.5}",
      "{\"op\":\"update_edge\",\"edge\":0,\"length\":1,"
      "\"object\":1}",
      "{\"op\":\"insert_object\",\"edge\":0,\"length\":1}",
      "{\"op\":\"delete_object\",\"object\":1,\"edge\":0}",
      "{\"op\":\"delete_object\",\"object\":1,\"offset\":0.5}",
      // Half-query-half-mutation must never execute either side.
      "{\"op\":\"update_edge\",\"edge\":0,\"length\":1,"
      "\"algo\":\"lbc\"}",
      "{\"op\":\"update_edge\",\"edge\":0,\"length\":1,"
      "\"sources\":[{\"edge\":0}]}",
      "{\"op\":\"delete_object\",\"object\":1,\"k\":4}",
      "{\"op\":\"insert_object\",\"edge\":0,"
      "\"limits\":{\"deadline_ms\":100}}",
      // Mutation fields without an op: not a valid query either.
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"length\":5}",
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}],"
      "\"object\":1}",
      // Range checks.
      "{\"op\":\"update_edge\",\"edge\":0,\"length\":-1}",
      "{\"op\":\"update_edge\",\"edge\":1.5,\"length\":1}",
      "{\"op\":\"insert_object\",\"edge\":0,\"offset\":-0.1}",
      "{\"op\":\"delete_object\",\"object\":-1}",
      "{\"op\":\"delete_object\",\"object\":1.5}",
  };
  for (const char* text : cases) {
    const StatusOr<ServeRequest> result = P(text);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

TEST(RequestTest, MutationResponseRoundTripsThroughParser) {
  ServeRequest request;
  request.op = ServeOp::kInsertObject;
  request.id = "mut-7";
  MutationResult result;
  result.data_epoch = 12;
  result.object = 99;
  const std::string body =
      EncodeMutationResponse(request, result, /*wall_ms=*/2.5);
  const JsonValue json = ParseJson(body).value();
  EXPECT_EQ(json.Find("id")->AsString(), "mut-7");
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  EXPECT_EQ(json.Find("op")->AsString(), "insert_object");
  EXPECT_DOUBLE_EQ(json.Find("data_epoch")->AsNumber(), 12.0);
  EXPECT_DOUBLE_EQ(json.Find("object")->AsNumber(), 99.0);
  EXPECT_DOUBLE_EQ(json.Find("stats")->Find("wall_ms")->AsNumber(), 2.5);

  request.op = ServeOp::kDeleteObject;
  result.removed = true;
  const JsonValue del =
      ParseJson(EncodeMutationResponse(request, result, 0.5)).value();
  EXPECT_EQ(del.Find("op")->AsString(), "delete_object");
  EXPECT_TRUE(del.Find("removed")->AsBool());

  request.op = ServeOp::kUpdateEdge;
  result.applied_length = 7.75;
  const JsonValue upd =
      ParseJson(EncodeMutationResponse(request, result, 0.5)).value();
  EXPECT_EQ(upd.Find("op")->AsString(), "update_edge");
  EXPECT_DOUBLE_EQ(upd.Find("applied_length")->AsNumber(), 7.75);
}

}  // namespace
}  // namespace msq::serve
