// MsqServer end to end over real loopback sockets: both protocols, the
// overload ladder (deadline propagation, shedding, connection cap), slow
// and hostile clients, graceful drain, and exact accounting afterwards.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "testing_support.h"

namespace msq::serve {
namespace {

// One server stack over a small generated workload. Each fixture instance
// owns a private MetricsRegistry so tests do not share counters.
struct ServerStack {
  explicit ServerStack(ServerConfig config = {}, std::size_t workers = 2,
                       bool with_mutations = false) {
    WorkloadConfig workload_config;
    workload_config.network = NetworkGenConfig{120, 160, 5, 0.0};
    workload_config.object_density = 1.0;
    workload = std::make_unique<Workload>(workload_config);
    obs::TelemetryConfig telemetry;
    telemetry.registry = &registry;
    executor = std::make_unique<QueryExecutor>(workload->dataset(), workers,
                                               telemetry);
    config.registry = &registry;
    config.admission.registry = &registry;
    if (with_mutations) {
      // The production wiring (tools/msq_server.cc): mutations run under
      // the executor's exclusive barrier against the owning Workload.
      QueryExecutor* exec = executor.get();
      Workload* wl = workload.get();
      config.mutation_handler = [exec, wl](const ServeRequest& req) {
        MutationResult out;
        out.status =
            exec->SubmitExclusive([wl, &req, &out] {
                  switch (req.op) {
                    case ServeOp::kUpdateEdge: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument("edge out of range");
                      }
                      StatusOr<Dist> applied =
                          wl->UpdateEdgeWeight(req.edge, req.length);
                      if (!applied.ok()) return applied.status();
                      out.applied_length = applied.value();
                      return Status();
                    }
                    case ServeOp::kInsertObject: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument("edge out of range");
                      }
                      if (req.offset >
                          wl->network().EdgeAt(req.edge).length) {
                        return Status::InvalidArgument(
                            "offset beyond edge length");
                      }
                      StatusOr<ObjectId> id =
                          wl->InsertObject(Location{req.edge, req.offset});
                      if (!id.ok()) return id.status();
                      out.object = id.value();
                      return Status();
                    }
                    case ServeOp::kDeleteObject: {
                      StatusOr<bool> removed = wl->DeleteObject(req.object);
                      if (!removed.ok()) return removed.status();
                      out.removed = removed.value();
                      return Status();
                    }
                    case ServeOp::kQuery:
                      break;
                  }
                  return Status::InvalidArgument("not a mutation");
                })
                .get();
        out.data_epoch = wl->dataset().graph_pager->data_epoch();
        return out;
      };
    }
    server = std::make_unique<MsqServer>(executor.get(), config);
    start_status = server->Start();
  }

  ~ServerStack() { server->Shutdown(); }

  obs::MetricsRegistry registry;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<QueryExecutor> executor;
  std::unique_ptr<MsqServer> server;
  Status start_status;
};

// Blocking NDJSON round trip on an existing connection.
StatusOr<std::string> RoundTrip(int fd, const std::string& request) {
  Status written = WriteAll(fd, request + "\n");
  if (!written.ok()) return written;
  FrameReader reader(fd, 1 << 20);
  return reader.ReadLine();
}

StatusOr<int> Connect(const ServerStack& stack) {
  StatusOr<int> fd = ConnectTcp("127.0.0.1", stack.server->port());
  if (fd.ok()) {
    (void)SetSocketTimeouts(fd.value(), /*recv_seconds=*/10.0,
                            /*send_seconds=*/5.0);
  }
  return fd;
}

TEST(ServerTest, NdjsonQueryRoundTrip) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok()) << stack.start_status.ToString();
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0},{\"edge\":5}],"
          "\"id\":\"rt-1\"}");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("id")->AsString(), "rt-1");
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  EXPECT_FALSE(json.Find("truncated")->AsBool());
  EXPECT_GT(json.Find("skyline")->AsArray().size(), 0u);
  ::close(fd);
}

TEST(ServerTest, PersistentConnectionSurvivesMalformedFrames) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  // Garbage first: a structured error, and the connection stays usable.
  const StatusOr<std::string> error_reply = RoundTrip(fd, "not json");
  ASSERT_TRUE(error_reply.ok());
  const JsonValue error_json = ParseJson(error_reply.value()).value();
  EXPECT_EQ(error_json.Find("error")->Find("code")->AsString(),
            "INVALID_ARGUMENT");
  // Then a valid request on the same connection.
  const StatusOr<std::string> ok_reply =
      RoundTrip(fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":1}]}");
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_EQ(ParseJson(ok_reply.value()).value().Find("status")->AsString(),
            "OK");
  ::close(fd);
  // Accounting: one rejected, one completed, nothing lost.
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->admission().rejected(), 1u);
  EXPECT_EQ(stack.server->admission().completed(), 1u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, KLimitsReturnedPrefix) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0},{\"edge\":7}],"
          "\"k\":1}");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("count")->AsNumber(), 1.0);
  EXPECT_EQ(json.Find("skyline")->AsArray().size(), 1u);
  EXPECT_GE(json.Find("total")->AsNumber(), 1.0);
  ::close(fd);
}

TEST(ServerTest, PageBudgetPropagatesAsTruncation) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":0},{\"edge\":3}],"
          "\"limits\":{\"page_budget\":1}}");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  ASSERT_TRUE(json.Find("truncated")->AsBool());
  EXPECT_EQ(json.Find("truncation_reason")->AsString(),
            "RESOURCE_EXHAUSTED");
  ::close(fd);
}

TEST(ServerTest, TinyDeadlineProducesTruncatedNotHung) {
  // A 1 ms deadline on a cold query: whether it expires in the queue or
  // mid-run, the reply must come back promptly as a truncated prefix.
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  for (int i = 0; i < 5; ++i) {
    const StatusOr<std::string> reply = RoundTrip(
        fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":2},{\"edge\":9}],"
            "\"limits\":{\"deadline_ms\":1}}");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    const JsonValue json = ParseJson(reply.value()).value();
    // Fast machines may finish inside 1 ms; then it's a full result.
    if (json.Find("truncated")->AsBool()) {
      EXPECT_EQ(json.Find("truncation_reason")->AsString(),
                "DEADLINE_EXCEEDED");
    }
  }
  ::close(fd);
}

TEST(ServerTest, OverloadShedsWithRetryAfter) {
  ServerConfig config;
  config.admission.max_pending = 1;
  config.admission.max_pending_cost = 1e9;
  ServerStack stack(config, /*workers=*/1);
  ASSERT_TRUE(stack.start_status.ok());

  // Fill the single admission slot with a slow request from one
  // connection, then hit the watermark from another.
  const int slow_fd = Connect(stack).value();
  ASSERT_TRUE(
      WriteAll(slow_fd,
               std::string("{\"algo\":\"naive\",\"sources\":[{\"edge\":0},"
                           "{\"edge\":1},{\"edge\":2}]}\n"))
          .ok());
  // Give the server a moment to admit it.
  usleep(50 * 1000);

  const int shed_fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      shed_fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":4}]}");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = ParseJson(reply.value()).value();
  const JsonValue* error = json.Find("error");
  // The slow query may have finished already on a fast machine; only
  // assert the shed shape when the shed actually happened.
  if (error != nullptr) {
    EXPECT_EQ(error->Find("code")->AsString(), "RESOURCE_EXHAUSTED");
    EXPECT_DOUBLE_EQ(error->Find("http")->AsNumber(), 503.0);
    EXPECT_GT(json.Find("retry_after_ms")->AsNumber(), 0.0);
  }
  ::close(shed_fd);
  // Drain the slow reply so its connection finishes cleanly.
  FrameReader slow_reader(slow_fd, 1 << 20);
  (void)slow_reader.ReadLine();
  ::close(slow_fd);
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, ConnectionCapShedsNewSockets) {
  ServerConfig config;
  config.max_connections = 1;
  ServerStack stack(config);
  ASSERT_TRUE(stack.start_status.ok());
  const int held = Connect(stack).value();
  // Park a request so the connection is definitely registered.
  const StatusOr<std::string> first = RoundTrip(
      held, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]}");
  ASSERT_TRUE(first.ok());

  const StatusOr<int> second = Connect(stack);
  ASSERT_TRUE(second.ok());
  FrameReader reader(second.value(), 1 << 20);
  const StatusOr<std::string> reply = reader.ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("error")->Find("code")->AsString(),
            "RESOURCE_EXHAUSTED");
  ::close(second.value());
  ::close(held);
}

TEST(ServerTest, OversizedFrameRejectedNotBuffered) {
  ServerConfig config;
  config.max_request_bytes = 1024;
  ServerStack stack(config);
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  const std::string big(8192, 'x');  // no newline — cap must cut it off
  ASSERT_TRUE(WriteAll(fd, big).ok());
  FrameReader reader(fd, 1 << 20);
  const StatusOr<std::string> reply = reader.ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("error")->Find("code")->AsString(),
            "RESOURCE_EXHAUSTED");
  ::close(fd);
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->admission().rejected(), 1u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, MidRequestDisconnectIsQuietlyDropped) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  // Half a frame, then vanish. Never becomes a received request.
  ASSERT_TRUE(WriteAll(fd, std::string("{\"algo\":\"lb")).ok());
  ::close(fd);
  // A second, healthy connection still works.
  const int fd2 = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd2, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]}");
  ASSERT_TRUE(reply.ok());
  ::close(fd2);
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->admission().received(), 1u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, HttpEndpoints) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());

  auto http = [&](const std::string& request) {
    const int fd = Connect(stack).value();
    EXPECT_TRUE(WriteAll(fd, request).ok());
    // Raw drain until EOF (Connection: close) — the body has no trailing
    // newline, so line framing would drop its last chunk.
    std::string response;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };

  const std::string healthz = http("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);

  const std::string metrics = http("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("msq_serve_requests_received"),
            std::string::npos);

  const std::string body =
      "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0}]}";
  const std::string query =
      http("POST /query HTTP/1.1\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(query.find("200 OK"), std::string::npos);
  EXPECT_NE(query.find("\"status\":\"OK\""), std::string::npos);

  const std::string missing = http("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string bad = http("POST /query HTTP/1.1\r\nContent-Length: "
                               "2\r\n\r\n{}");
  EXPECT_NE(bad.find("400"), std::string::npos);

  const std::string statz = http("GET /statz HTTP/1.1\r\n\r\n");
  EXPECT_NE(statz.find("\"received\""), std::string::npos);
  EXPECT_NE(statz.find("\"network_buffer\""), std::string::npos);
  EXPECT_NE(statz.find("\"shard_occupancy_ratio\""), std::string::npos);
  EXPECT_NE(statz.find("\"shard_access_ratio\""), std::string::npos);
}

// Raw HTTP round trip on a fresh connection: write the request, drain
// until EOF (the server closes HTTP connections after one response).
std::string Http(const ServerStack& stack, const std::string& request) {
  const int fd = Connect(stack).value();
  EXPECT_TRUE(WriteAll(fd, request).ok());
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServerTest, TraceparentRequestIsRetrievableFromTracez) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  // Sampled flags (01): head-sampled, so the trace is tail-retained and
  // detail spans are recorded. Cold caches guarantee storage misses.
  const std::string traceparent =
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":0},{\"edge\":5}],"
          "\"traceparent\":\"" + traceparent + "\"}");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(ParseJson(reply.value()).value().Find("status")->AsString(),
            "OK");
  ::close(fd);

  // The /tracez index lists it...
  const std::string index = Http(stack, "GET /tracez HTTP/1.1\r\n\r\n");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find("4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos);
  EXPECT_NE(index.find("\"reason\":\"head_sampled\""), std::string::npos);

  // ...and the per-trace Chrome export shows the full server-side
  // timeline: queue wait, the algorithm phase, and at least one
  // storage/cache detail span, all under the propagated trace id.
  const std::string trace = Http(
      stack,
      "GET /tracez?trace_id=4bf92f3577b34da6a3ce929d0e0e4736 "
      "HTTP/1.1\r\n\r\n");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"ce\""), std::string::npos);
  EXPECT_TRUE(trace.find("storage.page_read") != std::string::npos ||
              trace.find("cache.") != std::string::npos)
      << trace;
  EXPECT_NE(trace.find("4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos);

  // Unknown ids 404 instead of guessing.
  const std::string missing = Http(
      stack,
      "GET /tracez?trace_id=ffffffffffffffffffffffffffffffff "
      "HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(ServerTest, MalformedTraceparentFieldRejected) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":0}],"
          "\"traceparent\":\"00-BADHEX-01\"}");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("error")->Find("code")->AsString(),
            "INVALID_ARGUMENT");
  ::close(fd);
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->admission().rejected(), 1u);
}

TEST(ServerTest, HttpTraceparentHeaderPropagates) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const std::string body = "{\"algo\":\"lbc\",\"sources\":[{\"edge\":2}]}";
  const std::string response = Http(
      stack,
      "POST /query HTTP/1.1\r\n"
      "traceparent: 00-aaaabbbbccccdddd1111222233334444-1234123412341234-"
      "01\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
      body);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const std::string index = Http(stack, "GET /tracez HTTP/1.1\r\n\r\n");
  EXPECT_NE(index.find("aaaabbbbccccdddd1111222233334444"),
            std::string::npos);
  // A malformed header is rejected at the edge, not silently re-minted.
  const std::string bad = Http(
      stack,
      "POST /query HTTP/1.1\r\ntraceparent: nonsense\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(bad.find("400"), std::string::npos);
}

TEST(ServerTest, RequestzServesWideEventsForEveryOutcome) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  // One completed, one rejected: both must appear as wide events.
  ASSERT_TRUE(RoundTrip(fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":1}],"
                            "\"id\":\"wide-1\"}")
                  .ok());
  ASSERT_TRUE(RoundTrip(fd, "not json").ok());
  ::close(fd);

  // The wide event is appended after the reply write (so write_ms can be
  // measured), so the log can trail the reply the client just read by one
  // scheduling quantum — wait for it before asserting.
  for (int i = 0; i < 200 && stack.server->wide_events().Snapshot().size() < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const std::string requestz =
      Http(stack, "GET /requestz HTTP/1.1\r\n\r\n");
  EXPECT_NE(requestz.find("200 OK"), std::string::npos);
  EXPECT_NE(requestz.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(requestz.find("\"outcome\":\"rejected\""), std::string::npos);
  EXPECT_NE(requestz.find("\"id\":\"wide-1\""), std::string::npos);
  EXPECT_NE(requestz.find("\"queue_ms\""), std::string::npos);
  EXPECT_NE(requestz.find("\"execute_ms\""), std::string::npos);
  EXPECT_NE(requestz.find("\"total\":2"), std::string::npos);

  // The wide-event log itself: completed events carry non-empty stages
  // and a trace id; every event got one even though no client sent a
  // traceparent.
  const std::vector<obs::WideEvent> events =
      stack.server->wide_events().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].outcome, "completed");
  EXPECT_EQ(events[0].trace_id.size(), 32u);
  EXPECT_GT(events[0].total_ms, 0.0);
  EXPECT_GE(events[0].total_ms, events[0].execute_ms);
  EXPECT_EQ(events[1].outcome, "rejected");
  EXPECT_EQ(events[1].http_status, 400);
  EXPECT_EQ(events[1].trace_id.size(), 32u);
}

TEST(ServerTest, QueueWaitHistogramSplitsByOutcome) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  ASSERT_TRUE(
      RoundTrip(fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":3}]}").ok());
  ::close(fd);
  const obs::Histogram::Snapshot completed =
      stack.registry.histogram(metric::kServeQueueWaitCompletedUsHist)
          ->TakeSnapshot();
  EXPECT_EQ(completed.count, 1u);
  const obs::Histogram::Snapshot truncated =
      stack.registry.histogram(metric::kServeQueueWaitTruncatedUsHist)
          ->TakeSnapshot();
  EXPECT_EQ(truncated.count, 0u);
  const std::string metrics = Http(stack, "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("msq_serve_queue_wait_us_hist_completed"),
            std::string::npos);
}

TEST(ServerTest, GracefulDrainFinishesInFlightWork) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> answered{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&stack, &answered, c] {
      const StatusOr<int> fd = Connect(stack);
      if (!fd.ok()) return;
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::string request =
            "{\"algo\":\"lbc\",\"sources\":[{\"edge\":" +
            std::to_string((c * kPerClient + i) % 20) + "}]}";
        const StatusOr<std::string> reply = RoundTrip(fd.value(), request);
        if (!reply.ok()) break;
        answered.fetch_add(1);
      }
      ::close(fd.value());
    });
  }
  for (std::thread& t : clients) t.join();
  stack.server->Shutdown();  // must return; double-shutdown is a no-op
  stack.server->Shutdown();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(stack.server->admission().completed(), kClients * kPerClient);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
  // Flight recorder saw exactly the admitted queries.
  EXPECT_EQ(stack.executor->telemetry().flight_recorder().total_recorded(),
            stack.server->admission().admitted());
}

TEST(ServerTest, ShutdownUnblocksIdleConnections) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  // An idle persistent connection with no traffic must not stall drain.
  const int fd = Connect(stack).value();
  const double start = MonotonicSeconds();
  stack.server->Shutdown();
  EXPECT_LT(MonotonicSeconds() - start, 5.0);
  ::close(fd);
}

TEST(ServerTest, MutationWithoutHandlerFailsCleanly) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  const StatusOr<std::string> reply = RoundTrip(
      fd, "{\"op\":\"update_edge\",\"edge\":0,\"length\":5}");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = ParseJson(reply.value()).value();
  EXPECT_EQ(json.Find("error")->Find("code")->AsString(),
            "INVALID_ARGUMENT");
  ::close(fd);
  stack.server->Shutdown();
  // The request was well-formed, so it was admitted and failed — not
  // rejected at parse time — and accounting still balances.
  EXPECT_EQ(stack.server->admission().admitted(), 1u);
  EXPECT_EQ(stack.server->admission().failed(), 1u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
  EXPECT_EQ(stack.registry.counter(metric::kServeMutationsFailed)->value(),
            1u);
}

TEST(ServerTest, MutationsRoundTripAndAdvanceDataEpoch) {
  ServerStack stack({}, /*workers=*/2, /*with_mutations=*/true);
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();

  const StatusOr<std::string> update = RoundTrip(
      fd, "{\"op\":\"update_edge\",\"edge\":3,\"length\":123.5,"
          "\"id\":\"m-1\"}");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  const JsonValue update_json = ParseJson(update.value()).value();
  EXPECT_EQ(update_json.Find("status")->AsString(), "OK");
  EXPECT_EQ(update_json.Find("op")->AsString(), "update_edge");
  EXPECT_EQ(update_json.Find("id")->AsString(), "m-1");
  EXPECT_DOUBLE_EQ(update_json.Find("applied_length")->AsNumber(), 123.5);
  const double epoch1 = update_json.Find("data_epoch")->AsNumber();
  EXPECT_GT(epoch1, 0.0);

  const StatusOr<std::string> insert = RoundTrip(
      fd, "{\"op\":\"insert_object\",\"edge\":5,\"offset\":0}");
  ASSERT_TRUE(insert.ok());
  const JsonValue insert_json = ParseJson(insert.value()).value();
  EXPECT_EQ(insert_json.Find("op")->AsString(), "insert_object");
  const double epoch2 = insert_json.Find("data_epoch")->AsNumber();
  EXPECT_GT(epoch2, epoch1);
  const std::uint64_t inserted =
      static_cast<std::uint64_t>(insert_json.Find("object")->AsNumber());

  const StatusOr<std::string> del = RoundTrip(
      fd, "{\"op\":\"delete_object\",\"object\":" +
              std::to_string(inserted) + "}");
  ASSERT_TRUE(del.ok());
  const JsonValue del_json = ParseJson(del.value()).value();
  EXPECT_EQ(del_json.Find("op")->AsString(), "delete_object");
  EXPECT_TRUE(del_json.Find("removed")->AsBool());
  const double epoch3 = del_json.Find("data_epoch")->AsNumber();
  EXPECT_GT(epoch3, epoch2);

  // Queries still run on the mutated world over the same connection.
  const StatusOr<std::string> query = RoundTrip(
      fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":3}]}");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(ParseJson(query.value()).value().Find("status")->AsString(),
            "OK");
  ::close(fd);
  stack.server->Shutdown();

  EXPECT_EQ(stack.registry.counter(metric::kServeMutationsApplied)->value(),
            3u);
  EXPECT_DOUBLE_EQ(stack.registry.gauge(metric::kServeDataEpoch)->value(),
                   epoch3);
  EXPECT_EQ(stack.server->admission().completed(), 4u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, InvalidMutationTargetFailsWithoutCrash) {
  ServerStack stack({}, /*workers=*/2, /*with_mutations=*/true);
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  // Out-of-range edge: a clean structured error, not an MSQ_CHECK abort.
  const StatusOr<std::string> bad_edge = RoundTrip(
      fd, "{\"op\":\"update_edge\",\"edge\":999999,\"length\":1}");
  ASSERT_TRUE(bad_edge.ok());
  EXPECT_EQ(ParseJson(bad_edge.value())
                .value()
                .Find("error")
                ->Find("code")
                ->AsString(),
            "INVALID_ARGUMENT");
  // Deleting an id that never existed reports removed:false, status OK —
  // idempotent deletes are not errors.
  const StatusOr<std::string> missing = RoundTrip(
      fd, "{\"op\":\"delete_object\",\"object\":4000000000}");
  ASSERT_TRUE(missing.ok());
  const JsonValue missing_json = ParseJson(missing.value()).value();
  EXPECT_EQ(missing_json.Find("status")->AsString(), "OK");
  EXPECT_FALSE(missing_json.Find("removed")->AsBool());
  ::close(fd);
  stack.server->Shutdown();
  EXPECT_EQ(stack.registry.counter(metric::kServeMutationsFailed)->value(),
            1u);
  EXPECT_EQ(stack.registry.counter(metric::kServeMutationsApplied)->value(),
            1u);
  EXPECT_EQ(stack.server->admission().CheckConservation(), "");
}

TEST(ServerTest, HttpPostCarriesMutations) {
  ServerStack stack({}, /*workers=*/2, /*with_mutations=*/true);
  ASSERT_TRUE(stack.start_status.ok());
  const std::string body =
      "{\"op\":\"update_edge\",\"edge\":1,\"length\":9}";
  const std::string response = Http(
      stack, "POST /query HTTP/1.1\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"op\":\"update_edge\""), std::string::npos);
  EXPECT_NE(response.find("\"data_epoch\""), std::string::npos);
  const std::string requestz =
      Http(stack, "GET /requestz HTTP/1.1\r\n\r\n");
  EXPECT_NE(requestz.find("\"algo\":\"update_edge\""),
            std::string::npos);
}

TEST(ServerTest, HealthzReportsReadinessAndAdmissionOccupancy) {
  ServerConfig config;
  config.admission.max_pending = 7;
  config.admission.max_pending_cost = 1234.5;
  ServerStack stack(config);
  ASSERT_TRUE(stack.start_status.ok());

  const std::string healthz = Http(stack, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  // The literal the CI smoke greps for stays first...
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  // ...and the real readiness facts follow.
  const std::size_t body_at = healthz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const JsonValue json =
      ParseJson(healthz.substr(body_at + 4)).value();
  EXPECT_FALSE(json.Find("draining")->AsBool());
  EXPECT_GE(json.Find("data_epoch")->AsNumber(), 0.0);
  const JsonValue* admission = json.Find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->Find("pending")->AsNumber(), 0.0);
  EXPECT_EQ(admission->Find("max_pending")->AsNumber(), 7.0);
  EXPECT_EQ(admission->Find("pending_cost")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(admission->Find("max_pending_cost")->AsNumber(), 1234.5);

  // After drain the same endpoint flips draining, so a load balancer can
  // see the instance leaving.
  stack.server->Shutdown();
  const JsonValue drained = ParseJson(stack.server->HealthzJson()).value();
  EXPECT_TRUE(drained.Find("draining")->AsBool());
}

TEST(ServerTest, ExplainFlagReturnsPlanMatchingTheResult) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();

  // Without the flag: no plan in the response.
  const StatusOr<std::string> plain = RoundTrip(
      fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0},{\"edge\":5}]}");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(ParseJson(plain.value()).value().Find("plan"), nullptr);

  // With "explain":true the same query carries its ExecutionPlan.
  const StatusOr<std::string> explained = RoundTrip(
      fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":0},{\"edge\":5}],"
          "\"explain\":true,\"id\":\"ex-1\"}");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const JsonValue json = ParseJson(explained.value()).value();
  EXPECT_EQ(json.Find("status")->AsString(), "OK");
  const JsonValue* plan = json.Find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Find("algorithm")->AsString(), "lbc");
  // The plan's totals are the same query's QueryStats: its skyline size
  // must equal the response's own count.
  EXPECT_EQ(plan->Find("skyline_size")->AsNumber(),
            json.Find("count")->AsNumber());
  EXPECT_GT(plan->Find("dominance_tests")->Find("performed")->AsNumber(),
            0.0);
  ASSERT_NE(plan->Find("bounds"), nullptr);
  ASSERT_NE(plan->Find("cache")->Find("lookup_tiers"), nullptr);
  EXPECT_GT(
      plan->Find("cache")->Find("lookup_tiers")->Find("computed")
          ->AsNumber(),
      0.0);
  EXPECT_GT(plan->Find("phases")->AsArray().size(), 0u);
  EXPECT_EQ(plan->Find("sources")->AsArray().size(), 2u);

  // A non-boolean explain value is rejected at parse time.
  const StatusOr<std::string> bad = RoundTrip(
      fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":1}],\"explain\":1}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(ParseJson(bad.value()).value()
                .Find("error")->Find("code")->AsString(),
            "INVALID_ARGUMENT");
  ::close(fd);
}

TEST(ServerTest, ExplainzAggregatesRetainedPlans) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  // The pruning rollup accounts every completion; full plans are retained
  // only for explain-requested queries (here: the lbc one).
  ASSERT_TRUE(RoundTrip(fd, "{\"algo\":\"ce\",\"sources\":[{\"edge\":0},"
                            "{\"edge\":4}]}")
                  .ok());
  ASSERT_TRUE(RoundTrip(fd, "{\"algo\":\"lbc\",\"sources\":[{\"edge\":2}],"
                            "\"explain\":true}")
                  .ok());
  ::close(fd);

  const std::string explainz =
      Http(stack, "GET /explainz HTTP/1.1\r\n\r\n");
  EXPECT_NE(explainz.find("200 OK"), std::string::npos);
  const std::size_t body_at = explainz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const JsonValue json = ParseJson(explainz.substr(body_at + 4)).value();
  const JsonValue* efficiency = json.Find("pruning_efficiency");
  ASSERT_NE(efficiency, nullptr);
  ASSERT_EQ(efficiency->AsArray().size(), 2u);  // ce and lbc rows
  for (const JsonValue& row : efficiency->AsArray()) {
    const std::string algo = row.Find("algorithm")->AsString();
    EXPECT_TRUE(algo == "ce" || algo == "lbc") << algo;
    EXPECT_EQ(row.Find("queries")->AsNumber(), 1.0);
    EXPECT_GE(row.Find("prune_ratio")->AsNumber(), 0.0);
    EXPECT_LE(row.Find("prune_ratio")->AsNumber(), 1.0);
  }
  ASSERT_EQ(json.Find("plans")->AsArray().size(), 1u);
  for (const JsonValue& entry : json.Find("plans")->AsArray()) {
    EXPECT_GT(entry.Find("sequence")->AsNumber(), 0.0);
    ASSERT_NE(entry.Find("plan"), nullptr);
    ASSERT_NE(entry.Find("plan")->Find("algorithm"), nullptr);
    EXPECT_EQ(entry.Find("plan")->Find("algorithm")->AsString(), "lbc");
  }
}

TEST(ServerTest, DebugzBundlesEverySection) {
  ServerStack stack;
  ASSERT_TRUE(stack.start_status.ok());
  const int fd = Connect(stack).value();
  ASSERT_TRUE(RoundTrip(fd, "{\"algo\":\"edc\",\"sources\":[{\"edge\":1},"
                            "{\"edge\":6}],\"explain\":true}")
                  .ok());
  ::close(fd);

  // The wide event lands after the reply write — wait for it so the
  // bundle's requests section is deterministic.
  for (int i = 0; i < 200 && stack.server->wide_events().Snapshot().empty();
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const std::string debugz = Http(stack, "GET /debugz HTTP/1.1\r\n\r\n");
  EXPECT_NE(debugz.find("200 OK"), std::string::npos);
  const std::size_t body_at = debugz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  // The bundle is a response, not a hostile request — parse it with
  // limits sized for its metric/trace payload.
  JsonLimits limits;
  limits.max_bytes = 8u << 20;
  limits.max_values = 1u << 20;
  const StatusOr<JsonValue> parsed =
      ParseJson(debugz.substr(body_at + 4), limits);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& json = parsed.value();
  // One fetch, every section a postmortem starts from.
  ASSERT_NE(json.Find("build"), nullptr);
  EXPECT_NE(json.Find("build")->Find("compiler"), nullptr);
  const JsonValue* config_json = json.Find("config");
  ASSERT_NE(config_json, nullptr);
  EXPECT_EQ(config_json->Find("workers")->AsNumber(), 2.0);
  ASSERT_NE(json.Find("healthz"), nullptr);
  EXPECT_FALSE(json.Find("healthz")->Find("draining")->AsBool());
  ASSERT_NE(json.Find("statz"), nullptr);
  EXPECT_NE(json.Find("statz")->Find("received"), nullptr);
  const JsonValue* flight = json.Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->Find("total")->AsNumber(), 1.0);
  ASSERT_EQ(flight->Find("records")->AsArray().size(), 1u);
  const JsonValue& record = flight->Find("records")->AsArray()[0];
  EXPECT_EQ(record.Find("algo")->AsString(), "edc");
  EXPECT_NE(record.Find("dominance_tests"), nullptr);
  ASSERT_NE(json.Find("traces"), nullptr);
  ASSERT_NE(json.Find("requests"), nullptr);
  EXPECT_EQ(json.Find("requests")->Find("total")->AsNumber(), 1.0);
  // The metrics snapshot is the registry's JSONL re-framed as an array.
  ASSERT_NE(json.Find("metrics"), nullptr);
  EXPECT_GT(json.Find("metrics")->AsArray().size(), 0u);
  ASSERT_NE(json.Find("explain"), nullptr);
  EXPECT_EQ(json.Find("explain")->Find("plans")->AsArray().size(), 1u);

  // The bundle is also directly exportable (the SIGUSR1 path in
  // msq_server writes exactly this string to disk).
  const std::string direct = stack.server->DebugzJson();
  EXPECT_EQ(direct.front(), '{');
  EXPECT_NE(direct.find("\"build\":"), std::string::npos);
}

}  // namespace
}  // namespace msq::serve
