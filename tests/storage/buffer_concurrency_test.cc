// Multi-threaded hammer tests for the sharded BufferManager: concurrent
// readers see consistent page images and the atomic statistics stay exact;
// writers on disjoint pages lose nothing; transient-fault retries keep
// working under contention.
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"

namespace msq {
namespace {

int ReadInt(const Page& page) {
  int value;
  std::memcpy(&value, page.data.data(), sizeof(value));
  return value;
}

void WriteInt(Page* page, int value) {
  std::memcpy(page->data.data(), &value, sizeof(value));
}

// Allocates `count` pages on `disk`, each stamped with its own id.
void StampPages(DiskManager* disk, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const PageId id = disk->Allocate().value();
    Page page;
    WriteInt(&page, static_cast<int>(id));
    ASSERT_TRUE(disk->Write(id, page).ok());
  }
}

TEST(BufferManagerConcurrencyTest, UniformHammerKeepsShardsBalanced) {
  // Uniform page traffic from many threads must spread evenly over the
  // lock stripes: ids map to shards by modulo, so both residency and
  // access counts should stay within a 2x max/min bound — the invariant
  // the /statz shard gauges exist to watch.
  constexpr std::size_t kPages = 256;
  constexpr std::size_t kFrames = 64;
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerThread = 4000;

  InMemoryDiskManager disk;
  StampPages(&disk, kPages);
  BufferManager buffer(&disk, kFrames, RetryPolicy{}, kShards);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 101);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto id = static_cast<PageId>(rng.NextBounded(kPages));
        PageGuard guard = buffer.Fetch(id).value();
        EXPECT_EQ(ReadInt(*guard), static_cast<int>(id));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ShardBalanceStats balance = buffer.shard_balance();
  EXPECT_EQ(balance.shard_count, kShards);
  // Saturated pool: every stripe holds its full capacity slice.
  EXPECT_GE(balance.min_occupancy, 1u);
  EXPECT_LE(balance.occupancy_ratio, 2.0);
  // 16k uniform fetches over 8 stripes: traffic skew stays under 2x too.
  EXPECT_GT(balance.min_accesses, 0u);
  EXPECT_LE(balance.access_ratio, 2.0);

  // ResetStats restarts the per-shard access counts with the residency
  // intact — the cold-run discipline benchmarks rely on.
  buffer.ResetStats();
  const ShardBalanceStats reset = buffer.shard_balance();
  EXPECT_EQ(reset.max_accesses, 0u);
  EXPECT_EQ(reset.max_occupancy, balance.max_occupancy);
}

TEST(BufferManagerConcurrencyTest, ReadersSeeConsistentPagesAndExactCounts) {
  constexpr std::size_t kPages = 64;
  constexpr std::size_t kFrames = 16;
  constexpr std::size_t kThreads = 8;
  constexpr int kOpsPerThread = 3000;

  InMemoryDiskManager disk;
  StampPages(&disk, kPages);
  BufferManager buffer(&disk, kFrames, RetryPolicy{}, /*shards=*/8);
  ASSERT_EQ(buffer.shard_count(), 8u);

  std::vector<std::thread> threads;
  std::vector<int> bad_reads(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto id = static_cast<PageId>(rng.NextBounded(kPages));
        PageGuard guard = buffer.Fetch(id).value();
        // The frame is pinned: the image must be the stamped value no
        // matter what the other threads evict meanwhile.
        if (ReadInt(*guard) != static_cast<int>(id)) ++bad_reads[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(bad_reads[t], 0) << "thread " << t;
  }
  const BufferStats stats = buffer.stats();
  // Exactly one hit-or-miss per Fetch: the atomic counters lose nothing.
  EXPECT_EQ(stats.accesses(), kThreads * kOpsPerThread);
  EXPECT_GT(stats.evictions, 0u);  // pool is smaller than the page set
  EXPECT_EQ(buffer.pinned_pages(), 0u);
  // Fully-pinned shards may overflow transiently; once every guard is gone
  // the pool drains back under capacity via Clear.
  ASSERT_TRUE(buffer.Clear().ok());
  EXPECT_EQ(buffer.resident_pages(), 0u);
}

TEST(BufferManagerConcurrencyTest, WritersOnDisjointPagesLoseNothing) {
  constexpr std::size_t kPages = 32;
  constexpr std::size_t kThreads = 8;
  constexpr int kPasses = 50;

  InMemoryDiskManager disk;
  StampPages(&disk, kPages);
  BufferManager buffer(&disk, /*frames=*/8, RetryPolicy{}, /*shards=*/4);

  // Thread t owns the pages with id % kThreads == t — concurrent dirtying
  // and eviction writebacks must not mix the streams up.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int pass = 1; pass <= kPasses; ++pass) {
        for (std::size_t id = t; id < kPages; id += kThreads) {
          PageGuard guard =
              buffer.Fetch(static_cast<PageId>(id), /*mark_dirty=*/true)
                  .value();
          WriteInt(guard.page(),
                   static_cast<int>(t) * 1000000 + pass * 100 +
                       static_cast<int>(id));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  ASSERT_TRUE(buffer.FlushAll().ok());
  for (std::size_t id = 0; id < kPages; ++id) {
    Page raw;
    ASSERT_TRUE(disk.Read(static_cast<PageId>(id), &raw).ok());
    const int owner = static_cast<int>(id % kThreads);
    EXPECT_EQ(ReadInt(raw),
              owner * 1000000 + kPasses * 100 + static_cast<int>(id))
        << "page " << id;
  }
}

TEST(BufferManagerConcurrencyTest, TransientFaultRetriesSurviveContention) {
  constexpr std::size_t kPages = 64;
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  InMemoryDiskManager disk;
  StampPages(&disk, kPages);
  FaultInjectionConfig faults;
  faults.seed = 9;
  faults.transient_read_rate = 0.1;
  FaultInjectingDiskManager flaky(&disk, faults);
  RetryPolicy retry;
  retry.max_read_attempts = 8;  // per-read failure odds ~1e-8: never fails
  BufferManager buffer(&flaky, /*frames=*/8, retry, /*shards=*/4);
  flaky.Arm();

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto id = static_cast<PageId>(rng.NextBounded(kPages));
        auto fetched = buffer.Fetch(id);
        if (!fetched.ok() || ReadInt(*fetched.value()) != static_cast<int>(id))
          ++failures[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  flaky.Disarm();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  // The schedule really bit, and every fault was absorbed by a retry.
  EXPECT_GT(flaky.fault_stats().injected_transient_reads, 0u);
  EXPECT_GT(buffer.stats().read_retries, 0u);
  EXPECT_EQ(buffer.stats().failed_reads, 0u);
}

}  // namespace
}  // namespace msq
