// Model-based stress test: the BufferManager against a reference
// implementation of LRU-with-writeback semantics, under a randomized
// operation stream.
#include <list>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

// Reference model: page contents as seen through a correct LRU pool.
class ReferencePool {
 public:
  ReferencePool(std::size_t frames, std::size_t pages)
      : frames_(frames), disk_(pages, 0), pooled_() {}

  // Returns the value visible at `id` and applies `write` (if >= 0).
  int Access(std::size_t id, int write) {
    auto it = pooled_.find(id);
    if (it == pooled_.end()) {
      // Miss: evict LRU if full.
      if (pooled_.size() >= frames_) {
        const std::size_t victim = lru_.back();
        lru_.pop_back();
        auto victim_it = pooled_.find(victim);
        if (victim_it->second.dirty) {
          disk_[victim] = victim_it->second.value;
        }
        pooled_.erase(victim_it);
      }
      it = pooled_.emplace(id, Frame{disk_[id], false}).first;
      lru_.push_front(id);
    } else {
      lru_.remove(id);
      lru_.push_front(id);
    }
    if (write >= 0) {
      it->second.value = write;
      it->second.dirty = true;
    }
    return it->second.value;
  }

  void FlushAll() {
    for (auto& [id, frame] : pooled_) {
      if (frame.dirty) {
        disk_[id] = frame.value;
        frame.dirty = false;
      }
    }
  }

  int DiskValue(std::size_t id) const { return disk_[id]; }

 private:
  struct Frame {
    int value;
    bool dirty;
  };
  std::size_t frames_;
  std::vector<int> disk_;
  std::map<std::size_t, Frame> pooled_;
  std::list<std::size_t> lru_;
};

int ReadInt(const Page& page) {
  int value;
  std::memcpy(&value, page.data.data(), sizeof(value));
  return value;
}

void WriteInt(Page* page, int value) {
  std::memcpy(page->data.data(), &value, sizeof(value));
}

class BufferStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferStressTest, MatchesReferenceModel) {
  constexpr std::size_t kPages = 24;
  constexpr std::size_t kFrames = 6;
  InMemoryDiskManager disk;
  for (std::size_t i = 0; i < kPages; ++i) disk.Allocate();
  BufferManager buffer(&disk, kFrames);
  ReferencePool reference(kFrames, kPages);

  Rng rng(GetParam());
  for (int op = 0; op < 5000; ++op) {
    const auto id = static_cast<std::size_t>(rng.NextBounded(kPages));
    const bool write = rng.NextBounded(3) == 0;
    const int value = write ? static_cast<int>(rng.NextBounded(1 << 20)) : -1;

    PageGuard page = buffer.Fetch(static_cast<PageId>(id), write).value();
    const int visible_before = ReadInt(*page);
    const int expected =
        write ? value
              : reference.Access(id, -1);
    if (write) {
      reference.Access(id, value);
      WriteInt(page.page(), value);
    } else {
      EXPECT_EQ(visible_before, expected) << "op " << op << " page " << id;
    }

    if (rng.NextBounded(97) == 0) {
      buffer.FlushAll();
      reference.FlushAll();
      // After both flush, every page is clean, so the two disks agree
      // (compared without touching either pool's LRU state).
      for (std::size_t p = 0; p < kPages; ++p) {
        Page raw;
        disk.Read(static_cast<PageId>(p), &raw);
        EXPECT_EQ(ReadInt(raw), reference.DiskValue(p))
            << "flush mismatch page " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferStressTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace msq
