// FaultInjectingDiskManager semantics and the BufferManager's reaction to
// injected storage faults: retries for transient errors, clean propagation
// for permanent ones, and no dropped dirty page on a failed writeback.
#include "storage/fault_injection.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

Page MakePattern(std::uint8_t value) {
  Page page;
  for (auto& b : page.data) b = static_cast<std::byte>(value);
  return page;
}

TEST(FaultInjectionTest, DisarmedDefaultConfigIsTransparent) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();
  ASSERT_TRUE(disk.Write(a, MakePattern(0x3c)).ok());
  Page out;
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_EQ(out.data[9], static_cast<std::byte>(0x3c));
  EXPECT_EQ(disk.fault_stats().total(), 0u);
}

TEST(FaultInjectionTest, ScriptedReadFaultFiresOnceEvenDisarmed) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();
  ASSERT_TRUE(disk.Write(a, MakePattern(0x11)).ok());

  disk.FailNextReads(1, StatusCode::kIoError);
  Page out;
  const Status first = disk.Read(a, &out);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_TRUE(disk.Read(a, &out).ok());  // queue drained
  EXPECT_EQ(disk.fault_stats().injected_scripted_faults, 1u);
}

TEST(FaultInjectionTest, PersistentRateKillsAPageForGood) {
  InMemoryDiskManager inner;
  FaultInjectionConfig config;
  config.persistent_read_rate = 1.0;
  FaultInjectingDiskManager disk(&inner, config);
  const PageId a = disk.Allocate().value();

  disk.Arm();
  Page out;
  for (int i = 0; i < 3; ++i) {
    const Status status = disk.Read(a, &out);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  EXPECT_EQ(disk.fault_stats().injected_persistent_reads, 3u);
}

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  FaultInjectionConfig config;
  config.seed = 77;
  config.transient_read_rate = 0.3;
  std::string first_round;
  for (int round = 0; round < 2; ++round) {
    InMemoryDiskManager inner;
    FaultInjectingDiskManager disk(&inner, config);
    const PageId a = disk.Allocate().value();
    disk.Arm();
    std::string outcomes;
    Page out;
    for (int i = 0; i < 64; ++i) {
      outcomes += disk.Read(a, &out).ok() ? '.' : 'x';
    }
    if (round == 0) {
      first_round = outcomes;
      EXPECT_NE(outcomes.find('x'), std::string::npos);
    } else {
      EXPECT_EQ(outcomes, first_round);
    }
  }
}

// ------------------------------------------- BufferManager under faults

TEST(BufferFaultTest, TransientReadIsRetriedToSuccess) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();
  ASSERT_TRUE(disk.Write(a, MakePattern(0x7e)).ok());

  BufferManager buffer(&disk, 4);
  disk.FailNextReads(2, StatusCode::kUnavailable);  // default policy: 3 tries
  auto fetched = buffer.Fetch(a);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->data[0], static_cast<std::byte>(0x7e));
  (*fetched).Release();
  EXPECT_EQ(buffer.stats().read_retries, 2u);
  EXPECT_EQ(buffer.stats().failed_reads, 0u);
}

TEST(BufferFaultTest, TransientReadBeyondPolicyFailsCleanly) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();

  BufferManager buffer(&disk, 4);
  disk.FailNextReads(3, StatusCode::kUnavailable);
  auto fetched = buffer.Fetch(a);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(buffer.stats().failed_reads, 1u);
  // The failed miss must not leave a stale frame behind.
  EXPECT_EQ(buffer.resident_pages(), 0u);
  EXPECT_TRUE(buffer.Fetch(a).ok());  // next attempt is a clean miss
}

TEST(BufferFaultTest, NonzeroBackoffActuallySleepsBetweenRetries) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();

  RetryPolicy retry;
  retry.backoff_micros = 2000;  // retries sleep 2ms, then 4ms
  BufferManager buffer(&disk, 4, retry);
  disk.FailNextReads(2, StatusCode::kUnavailable);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(buffer.Fetch(a).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(buffer.stats().read_retries, 2u);
  // Two exponential backoff sleeps total >= 6ms; allow scheduler slop but
  // catch a backoff that never sleeps at all.
  EXPECT_GE(elapsed.count(), 5000);
}

TEST(BufferFaultTest, CorruptionIsNotRetried) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();

  BufferManager buffer(&disk, 4);
  disk.FailNextReads(1, StatusCode::kCorruption);
  auto fetched = buffer.Fetch(a);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(buffer.stats().read_retries, 0u);
}

TEST(BufferFaultTest, FailedWritebackKeepsDirtyPageResident) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();

  BufferManager buffer(&disk, 1);
  {
    PageGuard page = buffer.Fetch(a, /*mark_dirty=*/true).value();
    page->data[0] = static_cast<std::byte>(0x42);
  }  // unpin so fetching `b` must try to evict `a`

  // Eviction of `a` needs a writeback; make it fail (non-transient, so the
  // retry policy does not mask it).
  disk.FailNextWrites(1, StatusCode::kIoError);
  auto fetched = buffer.Fetch(b);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kIoError);
  EXPECT_EQ(buffer.stats().failed_writebacks, 1u);

  // Regression: the dirty frame must survive the failed eviction...
  EXPECT_EQ(buffer.resident_pages(), 1u);
  PageGuard again = buffer.Fetch(a).value();
  EXPECT_EQ(again->data[0], static_cast<std::byte>(0x42));
  again.Release();
  // ...and reach the disk once writes heal.
  ASSERT_TRUE(buffer.FlushAll().ok());
  Page out;
  ASSERT_TRUE(inner.Read(a, &out).ok());
  EXPECT_EQ(out.data[0], static_cast<std::byte>(0x42));
}

TEST(BufferFaultTest, ClearFailureDropsNothing) {
  InMemoryDiskManager inner;
  FaultInjectingDiskManager disk(&inner, FaultInjectionConfig{});
  const PageId a = disk.Allocate().value();

  BufferManager buffer(&disk, 4);
  {
    PageGuard page = buffer.Fetch(a, /*mark_dirty=*/true).value();
    page->data[5] = static_cast<std::byte>(0x66);
  }  // unpin so Clear may drop the frame once the writeback succeeds

  disk.FailNextWrites(1, StatusCode::kIoError);
  ASSERT_FALSE(buffer.Clear().ok());
  EXPECT_EQ(buffer.resident_pages(), 1u);  // nothing dropped

  ASSERT_TRUE(buffer.Clear().ok());  // writes healed
  EXPECT_EQ(buffer.resident_pages(), 0u);
  Page out;
  ASSERT_TRUE(inner.Read(a, &out).ok());
  EXPECT_EQ(out.data[5], static_cast<std::byte>(0x66));
}

// ------------------------------------------------ on-disk page integrity

class PageIntegrityTest : public ::testing::Test {
 protected:
  std::string path_ =
      ::testing::TempDir() + "/msq_integrity_test.bin";

  void TearDown() override { std::remove(path_.c_str()); }

  // Flips one bit at `offset` in the raw file.
  void FlipBit(long offset) {
    std::FILE* raw = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
    const int byte = std::fgetc(raw);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
    std::fputc(byte ^ 0x10, raw);
    std::fclose(raw);
  }
};

TEST_F(PageIntegrityTest, ChecksumDetectsPayloadBitFlip) {
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/true));
    const PageId a = disk->Allocate().value();
    ASSERT_TRUE(disk->Write(a, MakePattern(0xab)).ok());
  }
  // Page 0's payload starts at slot offset 0; flip a bit mid-payload.
  FlipBit(static_cast<long>(kPageSize / 2));
  auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/false));
  Page out;
  const Status status = disk->Read(0, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST_F(PageIntegrityTest, TrailerDamageIsCorruptionToo) {
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/true));
    const PageId a = disk->Allocate().value();
    ASSERT_TRUE(disk->Write(a, MakePattern(0xcd)).ok());
  }
  FlipBit(static_cast<long>(kPageSize));  // first trailer byte (magic)
  auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/false));
  Page out;
  EXPECT_EQ(disk->Read(0, &out).code(), StatusCode::kCorruption);
}

TEST_F(PageIntegrityTest, IntactPagesStillVerify) {
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/true));
    for (int i = 0; i < 3; ++i) {
      const PageId id = disk->Allocate().value();
      ASSERT_TRUE(
          disk->Write(id, MakePattern(static_cast<std::uint8_t>(i))).ok());
    }
  }
  // Damage only page 1; its neighbors must stay readable.
  FlipBit(static_cast<long>(FileDiskManager::kSlotSize + 10));
  auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/false));
  Page out;
  EXPECT_TRUE(disk->Read(0, &out).ok());
  EXPECT_EQ(disk->Read(1, &out).code(), StatusCode::kCorruption);
  EXPECT_TRUE(disk->Read(2, &out).ok());
  EXPECT_EQ(out.data[0], static_cast<std::byte>(2));
}

TEST_F(PageIntegrityTest, TruncatedFileRejectedOnOpen) {
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path_, /*truncate=*/true));
    const PageId a = disk->Allocate().value();
    ASSERT_TRUE(disk->Write(a, MakePattern(0xef)).ok());
  }
  // Chop the trailer off: the file is no longer slot-aligned.
  ASSERT_EQ(::truncate(path_.c_str(), static_cast<long>(kPageSize)), 0);
  auto disk = FileDiskManager::Open(path_, /*truncate=*/false);
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace msq
