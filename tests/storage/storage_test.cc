#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msq {
namespace {

Page MakePattern(std::uint8_t value) {
  Page page;
  for (auto& b : page.data) b = static_cast<std::byte>(value);
  return page;
}

// ------------------------------------------------------------ PageWriter

TEST(PageIoTest, WriteReadRoundTrip) {
  Page page;
  PageWriter writer(&page);
  writer.Write<std::uint32_t>(0xdeadbeef);
  writer.Write<double>(3.25);
  writer.Write<std::uint8_t>(7);

  PageReader reader(&page);
  EXPECT_EQ(reader.Read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(reader.Read<double>(), 3.25);
  EXPECT_EQ(reader.Read<std::uint8_t>(), 7);
}

TEST(PageIoTest, SeekRepositionsReader) {
  Page page;
  PageWriter writer(&page);
  writer.Write<std::uint64_t>(11);
  writer.Write<std::uint64_t>(22);
  PageReader reader(&page);
  reader.Seek(8);
  EXPECT_EQ(reader.Read<std::uint64_t>(), 22u);
}

TEST(PageIoTest, RemainingTracksCapacity) {
  Page page;
  PageWriter writer(&page);
  EXPECT_EQ(writer.remaining(), kPageSize);
  writer.Write<std::uint32_t>(1);
  EXPECT_EQ(writer.remaining(), kPageSize - 4);
}

// ----------------------------------------------------- InMemoryDiskManager

TEST(InMemoryDiskManagerTest, AllocateReadWrite) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.PageCount(), 2u);

  disk.Write(a, MakePattern(0xaa));
  disk.Write(b, MakePattern(0xbb));
  Page out;
  disk.Read(a, &out);
  EXPECT_EQ(out.data[100], static_cast<std::byte>(0xaa));
  disk.Read(b, &out);
  EXPECT_EQ(out.data[4095], static_cast<std::byte>(0xbb));
}

TEST(InMemoryDiskManagerTest, CountersTrackOps) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  Page page;
  disk.Write(a, page);
  disk.Read(a, &page);
  disk.Read(a, &page);
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.reads(), 2u);
  disk.ResetCounters();
  EXPECT_EQ(disk.reads(), 0u);
  EXPECT_EQ(disk.writes(), 0u);
}

TEST(InMemoryDiskManagerTest, FreshPageIsZeroed) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  Page out = MakePattern(0xff);
  disk.Read(a, &out);
  EXPECT_EQ(out.data[0], static_cast<std::byte>(0));
  EXPECT_EQ(out.data[kPageSize - 1], static_cast<std::byte>(0));
}

// ------------------------------------------------------- FileDiskManager

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/msq_disk_test.bin";
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    const PageId a = disk->Allocate().value();
    ASSERT_TRUE(disk->Write(a, MakePattern(0x5c)).ok());
  }
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/false));
    EXPECT_EQ(disk->PageCount(), 1u);
    Page out;
    ASSERT_TRUE(disk->Read(0, &out).ok());
    EXPECT_EQ(out.data[17], static_cast<std::byte>(0x5c));
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, TruncateDiscardsContents) {
  const std::string path = ::testing::TempDir() + "/msq_disk_trunc.bin";
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    disk->Allocate().value();
  }
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    EXPECT_EQ(disk->PageCount(), 0u);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, OpenFailureReturnsIoError) {
  auto disk =
      FileDiskManager::Open("/nonexistent_dir_msq/file.bin", true);
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kIoError);
  EXPECT_NE(disk.status().message().find("file.bin"), std::string::npos);
}

// --------------------------------------------------------- BufferManager

TEST(BufferManagerTest, HitAfterMiss) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().misses, 1u);
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().hits, 1u);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BufferManagerTest, EvictsLeastRecentlyUsed) {
  InMemoryDiskManager disk;
  PageId pages[3];
  for (auto& p : pages) p = disk.Allocate().value();
  BufferManager buffer(&disk, 2);

  buffer.Fetch(pages[0]);
  buffer.Fetch(pages[1]);
  buffer.Fetch(pages[0]);  // 1 is now LRU
  buffer.Fetch(pages[2]);  // evicts 1
  EXPECT_EQ(buffer.stats().evictions, 1u);
  buffer.Fetch(pages[0]);  // still resident
  EXPECT_EQ(buffer.stats().misses, 3u);
  buffer.Fetch(pages[1]);  // was evicted -> miss
  EXPECT_EQ(buffer.stats().misses, 4u);
}

TEST(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  BufferManager buffer(&disk, 1);

  Page* page = buffer.Fetch(a, /*mark_dirty=*/true).value();
  page->data[0] = static_cast<std::byte>(0x42);
  buffer.Fetch(b);  // evicts a, must write it back

  Page out;
  disk.Read(a, &out);
  EXPECT_EQ(out.data[0], static_cast<std::byte>(0x42));
  EXPECT_EQ(buffer.stats().dirty_writebacks, 1u);
}

TEST(BufferManagerTest, CleanPageNotWrittenBack) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  BufferManager buffer(&disk, 1);
  buffer.Fetch(a);
  buffer.Fetch(b);
  EXPECT_EQ(buffer.stats().dirty_writebacks, 0u);
  EXPECT_EQ(disk.writes(), 0u);
}

TEST(BufferManagerTest, AllocatePageIsResidentAndDirty) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 2);
  auto [id, page] = buffer.AllocatePage().value();
  page->data[7] = static_cast<std::byte>(0x99);
  ASSERT_TRUE(buffer.FlushAll().ok());
  Page out;
  disk.Read(id, &out);
  EXPECT_EQ(out.data[7], static_cast<std::byte>(0x99));
}

TEST(BufferManagerTest, ClearDropsResidency) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  buffer.Fetch(a);
  ASSERT_TRUE(buffer.Clear().ok());
  EXPECT_EQ(buffer.resident_pages(), 0u);
  buffer.ResetStats();
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BufferManagerTest, DefaultFramesMatchPaperSetup) {
  // 1 MB buffer of 4 KB pages = 256 frames.
  EXPECT_EQ(kDefaultBufferFrames, 256u);
}

TEST(BufferManagerTest, ModificationsVisibleWhileResident) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  Page* page = buffer.Fetch(a, true).value();
  page->data[3] = static_cast<std::byte>(0x17);
  // Same pooled image on re-fetch.
  Page* again = buffer.Fetch(a).value();
  EXPECT_EQ(again->data[3], static_cast<std::byte>(0x17));
}

}  // namespace
}  // namespace msq
