#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msq {
namespace {

Page MakePattern(std::uint8_t value) {
  Page page;
  for (auto& b : page.data) b = static_cast<std::byte>(value);
  return page;
}

// ------------------------------------------------------------ PageWriter

TEST(PageIoTest, WriteReadRoundTrip) {
  Page page;
  PageWriter writer(&page);
  writer.Write<std::uint32_t>(0xdeadbeef);
  writer.Write<double>(3.25);
  writer.Write<std::uint8_t>(7);

  PageReader reader(&page);
  EXPECT_EQ(reader.Read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(reader.Read<double>(), 3.25);
  EXPECT_EQ(reader.Read<std::uint8_t>(), 7);
}

TEST(PageIoTest, SeekRepositionsReader) {
  Page page;
  PageWriter writer(&page);
  writer.Write<std::uint64_t>(11);
  writer.Write<std::uint64_t>(22);
  PageReader reader(&page);
  reader.Seek(8);
  EXPECT_EQ(reader.Read<std::uint64_t>(), 22u);
}

TEST(PageIoTest, RemainingTracksCapacity) {
  Page page;
  PageWriter writer(&page);
  EXPECT_EQ(writer.remaining(), kPageSize);
  writer.Write<std::uint32_t>(1);
  EXPECT_EQ(writer.remaining(), kPageSize - 4);
}

// ----------------------------------------------------- InMemoryDiskManager

TEST(InMemoryDiskManagerTest, AllocateReadWrite) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.PageCount(), 2u);

  disk.Write(a, MakePattern(0xaa));
  disk.Write(b, MakePattern(0xbb));
  Page out;
  disk.Read(a, &out);
  EXPECT_EQ(out.data[100], static_cast<std::byte>(0xaa));
  disk.Read(b, &out);
  EXPECT_EQ(out.data[4095], static_cast<std::byte>(0xbb));
}

TEST(InMemoryDiskManagerTest, CountersTrackOps) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  Page page;
  disk.Write(a, page);
  disk.Read(a, &page);
  disk.Read(a, &page);
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.reads(), 2u);
  disk.ResetCounters();
  EXPECT_EQ(disk.reads(), 0u);
  EXPECT_EQ(disk.writes(), 0u);
}

TEST(InMemoryDiskManagerTest, FreshPageIsZeroed) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  Page out = MakePattern(0xff);
  disk.Read(a, &out);
  EXPECT_EQ(out.data[0], static_cast<std::byte>(0));
  EXPECT_EQ(out.data[kPageSize - 1], static_cast<std::byte>(0));
}

// ------------------------------------------------------- FileDiskManager

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/msq_disk_test.bin";
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    const PageId a = disk->Allocate().value();
    ASSERT_TRUE(disk->Write(a, MakePattern(0x5c)).ok());
  }
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/false));
    EXPECT_EQ(disk->PageCount(), 1u);
    Page out;
    ASSERT_TRUE(disk->Read(0, &out).ok());
    EXPECT_EQ(out.data[17], static_cast<std::byte>(0x5c));
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, TruncateDiscardsContents) {
  const std::string path = ::testing::TempDir() + "/msq_disk_trunc.bin";
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    disk->Allocate().value();
  }
  {
    auto disk = ValueOrThrow(FileDiskManager::Open(path, /*truncate=*/true));
    EXPECT_EQ(disk->PageCount(), 0u);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, OpenFailureReturnsIoError) {
  auto disk =
      FileDiskManager::Open("/nonexistent_dir_msq/file.bin", true);
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kIoError);
  EXPECT_NE(disk.status().message().find("file.bin"), std::string::npos);
}

// --------------------------------------------------------- BufferManager

TEST(BufferManagerTest, HitAfterMiss) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().misses, 1u);
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().hits, 1u);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BufferManagerTest, EvictsLeastRecentlyUsed) {
  InMemoryDiskManager disk;
  PageId pages[3];
  for (auto& p : pages) p = disk.Allocate().value();
  BufferManager buffer(&disk, 2);

  buffer.Fetch(pages[0]);
  buffer.Fetch(pages[1]);
  buffer.Fetch(pages[0]);  // 1 is now LRU
  buffer.Fetch(pages[2]);  // evicts 1
  EXPECT_EQ(buffer.stats().evictions, 1u);
  buffer.Fetch(pages[0]);  // still resident
  EXPECT_EQ(buffer.stats().misses, 3u);
  buffer.Fetch(pages[1]);  // was evicted -> miss
  EXPECT_EQ(buffer.stats().misses, 4u);
}

TEST(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  BufferManager buffer(&disk, 1);

  {
    PageGuard guard = buffer.Fetch(a, /*mark_dirty=*/true).value();
    guard.page()->data[0] = static_cast<std::byte>(0x42);
  }                  // unpin so the one-frame pool may evict `a`
  buffer.Fetch(b);   // evicts a, must write it back

  Page out;
  disk.Read(a, &out);
  EXPECT_EQ(out.data[0], static_cast<std::byte>(0x42));
  EXPECT_EQ(buffer.stats().dirty_writebacks, 1u);
}

TEST(BufferManagerTest, CleanPageNotWrittenBack) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  BufferManager buffer(&disk, 1);
  buffer.Fetch(a);
  buffer.Fetch(b);
  EXPECT_EQ(buffer.stats().dirty_writebacks, 0u);
  EXPECT_EQ(disk.writes(), 0u);
}

TEST(BufferManagerTest, AllocatePageIsResidentAndDirty) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 2);
  PageGuard guard = buffer.AllocatePage().value();
  const PageId id = guard.id();
  guard.page()->data[7] = static_cast<std::byte>(0x99);
  ASSERT_TRUE(buffer.FlushAll().ok());
  Page out;
  disk.Read(id, &out);
  EXPECT_EQ(out.data[7], static_cast<std::byte>(0x99));
}

TEST(BufferManagerTest, ClearDropsResidency) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  buffer.Fetch(a);
  ASSERT_TRUE(buffer.Clear().ok());
  EXPECT_EQ(buffer.resident_pages(), 0u);
  buffer.ResetStats();
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BufferManagerTest, DefaultFramesMatchPaperSetup) {
  // 1 MB buffer of 4 KB pages = 256 frames.
  EXPECT_EQ(kDefaultBufferFrames, 256u);
}

TEST(BufferManagerTest, ModificationsVisibleWhileResident) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  PageGuard page = buffer.Fetch(a, true).value();
  page.page()->data[3] = static_cast<std::byte>(0x17);
  // Same pooled image on re-fetch.
  PageGuard again = buffer.Fetch(a).value();
  EXPECT_EQ(again.page()->data[3], static_cast<std::byte>(0x17));
}

TEST(BufferManagerTest, PinnedFrameIsNeverEvicted) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  const PageId c = disk.Allocate().value();
  BufferManager buffer(&disk, 1);

  PageGuard pin = buffer.Fetch(a, /*mark_dirty=*/true).value();
  pin.page()->data[0] = static_cast<std::byte>(0x7f);
  EXPECT_EQ(buffer.pinned_pages(), 1u);

  // The only frame is pinned: the shard overflows temporarily instead of
  // evicting the pinned page or failing.
  ASSERT_TRUE(buffer.Fetch(b).ok());
  ASSERT_TRUE(buffer.Fetch(c).ok());
  EXPECT_EQ(buffer.stats().dirty_writebacks, 0u);
  EXPECT_EQ(pin.page()->data[0], static_cast<std::byte>(0x7f));

  // Unpinning lets later fetches shrink the shard back under capacity.
  pin.Release();
  EXPECT_EQ(buffer.pinned_pages(), 0u);
  ASSERT_TRUE(buffer.Fetch(b).ok());
  EXPECT_EQ(buffer.resident_pages(), 1u);
}

TEST(BufferManagerTest, ClearKeepsPinnedFrames) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  const PageId b = disk.Allocate().value();
  BufferManager buffer(&disk, 4);
  PageGuard pin = buffer.Fetch(a).value();
  buffer.Fetch(b);
  ASSERT_TRUE(buffer.Clear().ok());
  EXPECT_EQ(buffer.resident_pages(), 1u);  // only the pinned frame survives
  buffer.ResetStats();
  buffer.Fetch(a);
  EXPECT_EQ(buffer.stats().hits, 1u);  // still resident
}

TEST(BufferManagerTest, MovedGuardTransfersThePin) {
  InMemoryDiskManager disk;
  const PageId a = disk.Allocate().value();
  BufferManager buffer(&disk, 2);
  PageGuard outer;
  {
    PageGuard inner = buffer.Fetch(a).value();
    outer = std::move(inner);
    EXPECT_FALSE(inner.valid());
  }  // inner's destruction must not unpin — outer owns the pin now
  EXPECT_EQ(buffer.pinned_pages(), 1u);
  ASSERT_TRUE(outer.valid());
  outer.Release();
  EXPECT_EQ(buffer.pinned_pages(), 0u);
}

TEST(BufferManagerTest, ShardCountHeuristicAndOverride) {
  InMemoryDiskManager disk;
  // Small pools collapse to one shard (exact-LRU unit-test semantics).
  EXPECT_EQ(BufferManager(&disk, 8).shard_count(), 1u);
  // The experiment default spreads across 16 shards.
  EXPECT_EQ(BufferManager(&disk, 256).shard_count(), 16u);
  // Explicit override wins, clamped to the frame count.
  EXPECT_EQ(BufferManager(&disk, 16, RetryPolicy{}, 4).shard_count(), 4u);
  EXPECT_EQ(BufferManager(&disk, 2, RetryPolicy{}, 8).shard_count(), 2u);
}

TEST(BufferManagerTest, ShardedPoolKeepsExactCounts) {
  InMemoryDiskManager disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 32; ++i) pages.push_back(disk.Allocate().value());
  BufferManager buffer(&disk, 32, RetryPolicy{}, 8);
  for (const PageId id : pages) buffer.Fetch(id);
  for (const PageId id : pages) buffer.Fetch(id);
  EXPECT_EQ(buffer.stats().misses, 32u);
  EXPECT_EQ(buffer.stats().hits, 32u);
  EXPECT_EQ(buffer.resident_pages(), 32u);
}

}  // namespace
}  // namespace msq
