// Shared helpers for the msq test suite.
#ifndef MSQ_TESTS_TESTING_SUPPORT_H_
#define MSQ_TESTS_TESTING_SUPPORT_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/query.h"
#include "gen/workloads.h"
#include "graph/road_network.h"

namespace msq::testing {

// k x k grid network in the unit square, unit-square spacing 1/(k-1);
// horizontal and vertical edges with Euclidean lengths. Node (r, c) has id
// r * k + c. Finalized.
inline RoadNetwork MakeGridNetwork(std::size_t k) {
  RoadNetwork network;
  const double step = k > 1 ? 1.0 / static_cast<double>(k - 1) : 1.0;
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      network.AddNode(Point{static_cast<double>(c) * step,
                            static_cast<double>(r) * step});
    }
  }
  auto id = [k](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * k + c);
  };
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      if (c + 1 < k) network.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < k) network.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  network.Finalize();
  return network;
}

// Straight-line network: n nodes equally spaced on the x axis, n-1 edges.
inline RoadNetwork MakeLineNetwork(std::size_t n) {
  RoadNetwork network;
  const double step = n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    network.AddNode(Point{static_cast<double>(i) * step, 0.5});
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    network.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  network.Finalize();
  return network;
}

// Object ids of a result, sorted.
inline std::vector<ObjectId> SkylineIds(const SkylineResult& result) {
  std::vector<ObjectId> ids;
  ids.reserve(result.skyline.size());
  for (const SkylineEntry& entry : result.skyline) {
    ids.push_back(entry.object);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Builds a workload around a handcrafted network + objects with default
// buffer sizes.
inline std::unique_ptr<Workload> MakeWorkload(
    RoadNetwork network, std::vector<Location> objects,
    std::vector<DistVector> attrs = {}) {
  WorkloadConfig config;
  return std::make_unique<Workload>(config, std::move(network),
                                    std::move(objects), std::move(attrs));
}

// Random connected workload (generated network + uniform objects).
inline std::unique_ptr<Workload> MakeRandomWorkload(std::size_t nodes,
                                                    std::size_t edges,
                                                    double object_density,
                                                    std::uint64_t seed,
                                                    std::size_t attr_dims =
                                                        0) {
  WorkloadConfig config;
  config.network =
      NetworkGenConfig{nodes, edges, seed, /*curvature=*/0.0};
  config.object_density = object_density;
  config.object_seed = seed * 31 + 7;
  config.static_attr_dims = attr_dims;
  return std::make_unique<Workload>(config);
}

}  // namespace msq::testing

#endif  // MSQ_TESTS_TESTING_SUPPORT_H_
