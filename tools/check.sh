#!/usr/bin/env bash
# Sanitizer gate: configure, build, and run tests under a sanitizer build
# (the MSQ_SANITIZE CMake option). Usage:
#
#   tools/check.sh [build-dir] [mode]
#
# Modes:
#   asan (default)  address+undefined over the full test suite
#   tsan            thread sanitizer over the concurrency suites
#                   (BufferManagerConcurrency / QueryExecutor /
#                   ConcurrentHammer / Cache / parallel-source tests — the
#                   multi-threaded code paths)
#
# Also validates that the committed BENCH_throughput.json and
# BENCH_layout.json carry their host metadata (hardware_concurrency) and
# build-info stamp (git sha, compiler, flags), so benchmark numbers are
# never read without knowing what produced them. In asan mode, a short chaos soak then writes the
# wide-event JSONL and retained-trace dumps and runs them through
# tools/validate_telemetry.py (skipped with a warning if python3 is
# missing), followed by a short bench_churn run (mutations interleaved
# with queries; the binary gates on conservation, epoch monotonicity, the
# warm-vs-cold oracle, and bounded page growth).
#
# The build dir defaults to build-asan/ or build-tsan/ next to the source
# tree, so `tools/check.sh build-asan` (the CI invocation) keeps working.
# Exits non-zero on the first configure, build, or test failure.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${2:-asan}"
case "$mode" in
  asan)
    build_dir="${1:-$repo_root/build-asan}"
    sanitize="address;undefined"
    ;;
  tsan)
    build_dir="${1:-$repo_root/build-tsan}"
    sanitize="thread"
    ;;
  *)
    echo "check.sh: unknown mode '$mode' (expected asan or tsan)" >&2
    exit 2
    ;;
esac

# Bench metadata gate: committed benchmark numbers must state the core
# count of the host that produced them and carry a build-info stamp (the
# bench binaries embed both; a file without them predates the fields or
# was hand-edited).
for bench_json in "$repo_root/BENCH_throughput.json" \
                  "$repo_root/BENCH_layout.json"; do
  [[ -f "$bench_json" ]] || continue
  if ! grep -q '"hardware_concurrency"' "$bench_json"; then
    echo "check.sh: $bench_json lacks \"hardware_concurrency\" —" \
         "re-run its bench binary to regenerate it" >&2
    exit 1
  fi
  if ! grep -q '"build_info"' "$bench_json"; then
    echo "check.sh: $bench_json lacks the \"build_info\" stamp —" \
         "re-run its bench binary to regenerate it" >&2
    exit 1
  fi
done

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMSQ_SANITIZE="$sanitize"
cmake --build "$build_dir" -j "$(nproc)"

validate_telemetry() {
  # Telemetry artifact schema gate (asan mode): a short soak with chaos on
  # writes the wide-event JSONL and retained-trace Chrome dump, and the
  # schema checker must accept both — a format regression fails here, not
  # in whatever tool next tries to load a CI artifact.
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: WARNING python3 not found — skipping telemetry" \
         "artifact validation" >&2
    return 0
  fi
  local out_dir="$build_dir/telemetry-check"
  mkdir -p "$out_dir"
  MSQ_SOAK_SCALE=0.05 MSQ_SOAK_PHASE_S=2 MSQ_SOAK_CLIENTS=2 \
  MSQ_SOAK_OUT="$out_dir/BENCH_soak.json" \
  MSQ_SOAK_WIDE_OUT="$out_dir/wide.jsonl" \
  MSQ_SOAK_TRACE_OUT="$out_dir/traces.json" \
    "$build_dir/bench/bench_soak"
  python3 "$repo_root/tools/validate_telemetry.py" \
    --wide-events "$out_dir/wide.jsonl" \
    --trace-dump "$out_dir/traces.json"
}

run_churn() {
  # Dynamic-world gate (asan mode): a short churn run — edge-weight
  # updates and object insert/delete interleaved with CE/EDC/LBC queries
  # over live connections, storage faults armed. bench_churn exits
  # non-zero on any gate failure: conservation, per-connection data_epoch
  # monotonicity, warm-vs-cold oracle mismatch, or live-page growth
  # beyond the net-insert bound.
  mkdir -p "$build_dir/telemetry-check"
  MSQ_CHURN_PHASE_S=2 \
  MSQ_CHURN_OUT="$build_dir/telemetry-check/BENCH_churn.json" \
    "$build_dir/bench/bench_churn"
}

if [[ "$mode" == "tsan" ]]; then
  # TSan's scheduler interleaving makes the full suite slow; the
  # single-threaded tests gain nothing from it, so gate on the suites that
  # actually run threads. second_deadlock_stack aids lock-order reports.
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
      -R "Concurrency|Executor|Hammer|Cache|ServerTest|AdmissionTest|DeadlineRace|Parallel"
else
  # halt_on_error makes UBSan findings fail the run instead of just logging.
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  validate_telemetry
  run_churn
fi

echo "check.sh: $mode build + tests clean"
