#!/usr/bin/env bash
# Sanitizer gate: configure, build, and run the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (the MSQ_SANITIZE CMake
# option). Usage:
#
#   tools/check.sh [build-dir]
#
# Defaults to build-asan/ next to the source tree. Exits non-zero on the
# first configure, build, or test failure.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMSQ_SANITIZE="address;undefined"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "check.sh: sanitizer build + tests clean"
