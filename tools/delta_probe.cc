#include <cstdio>
#include <algorithm>
#include "gen/network_gen.h"
#include "gen/workloads.h"
using namespace msq;
int main() {
  for (NetworkClass cls :
       {NetworkClass::kCA, NetworkClass::kAU, NetworkClass::kNA}) {
    const auto cfg = PaperNetworkConfig(cls, 0.3, 1);
    const RoadNetwork net = GenerateNetwork(cfg);
    std::printf("%s (scale 0.3): |V|=%zu |E|=%zu delta=%.3f\n",
                NetworkClassName(cls).c_str(), net.node_count(),
                net.edge_count(), MeasureDetourRatio(net, 200, 9));
  }
  return 0;
}
