// Throwaway diagnostic: is each naive-skyline point missed by EDC inside
// the union window (implementation bug) or outside it (intrinsic gap)?
#include <cstdio>
#include <unordered_set>
#include "core/edc.h"
#include "core/naive.h"
#include "euclid/bbs.h"
#include "euclid/bnl.h"
#include "gen/workloads.h"
#include "graph/astar.h"

using namespace msq;

int main() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{240, 330, 107, 0.0};
  config.object_density = 0.5;
  config.object_seed = 107 * 31 + 7;
  Workload workload(config);
  auto spec = workload.SampleQuery(4, 107 + 1000);
  Dataset d = workload.dataset();

  auto naive = RunNaive(d, spec);
  auto edc = RunEdc(d, spec);
  std::unordered_set<ObjectId> edc_ids;
  for (auto& e : edc.skyline) edc_ids.insert(e.object);

  // Recompute Euclid skyline + shifted vectors.
  std::vector<Point> qpts;
  for (auto& s : spec.sources) qpts.push_back(d.network->LocationPosition(s));
  std::vector<Point> opts_;
  for (ObjectId i = 0; i < d.object_count(); ++i)
    opts_.push_back(d.mapping->ObjectPosition(i));
  auto esky = BnlEuclideanSkyline(opts_, qpts);
  std::vector<DistVector> windows;
  std::vector<std::unique_ptr<AStarSearch>> searches;
  for (auto& s : spec.sources)
    searches.push_back(std::make_unique<AStarSearch>(d.graph_pager, s));
  for (auto idx : esky) {
    DistVector w;
    for (auto& s : searches)
      w.push_back(s->DistanceTo(d.mapping->ObjectLocation((ObjectId)idx)));
    windows.push_back(w);
  }
  std::printf("euclid skyline size %zu, naive %zu, edc %zu\n", esky.size(),
              naive.skyline.size(), edc.skyline.size());
  for (auto& entry : naive.skyline) {
    if (edc_ids.count(entry.object)) continue;
    // inside any window? (Euclid vector vs window)
    DistVector ev = EuclideanVector(opts_[entry.object], qpts);
    bool inside = false;
    for (auto& w : windows) {
      bool in = true;
      for (size_t i = 0; i < ev.size(); ++i)
        if (ev[i] > w[i]) { in = false; break; }
      if (in) { inside = true; break; }
    }
    std::printf("missed object %u: inside union window = %d\n", entry.object,
                (int)inside);
  }
  return 0;
}
