#include <cstdio>
#include "core/edc.h"
#include "core/naive.h"
#include "gen/workloads.h"
using namespace msq;
int main() {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadConfig config;
    config.network = NetworkGenConfig{400, 1000, seed, 0.0};
    config.object_density = 0.5;
    config.object_seed = seed * 31 + 7;
    Workload w(config);
    auto spec = w.SampleQuery(3, seed);
    auto naive = RunNaive(w.dataset(), spec);
    auto faithful =
        RunEdc(w.dataset(), spec, EdcOptions{.paper_faithful = true});
    std::printf("seed %llu: naive %zu faithful %zu\n",
                (unsigned long long)seed, naive.skyline.size(),
                faithful.skyline.size());
  }
  return 0;
}
