// Fuzz reproduction driver, two modes:
//
//   fuzz_repro [SEED]
//     Replays FuzzTest.AllAlgorithmsMatchOracleOnAdversarialInstances for
//     the seed, printing full instance details on any divergence.
//
//   fuzz_repro json PATH [ITERS] [SEED]
//     Corpus-driven fuzz of the serving JSON/request parser. PATH is a
//     corpus file or directory (tests/serve/corpus/ in-tree). Every seed
//     input runs through ParseJson and ParseServeRequestText with
//     filename-prefix expectations (ok_* must parse, bad_* must be
//     rejected, raw_* must merely not crash), then ITERS seeded mutants
//     (byte flips, splices, truncations, token injections) stress both
//     parsers under randomized JsonLimits. Invariants checked on every
//     accepted parse: request caps hold (sources/k/id/deadline ranges).
//     Exit 0 = no violation; any parser crash surfaces as the crash.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/skyline_query.h"
#include "gen/network_gen.h"
#include "gen/workloads.h"
#include "serve/json.h"
#include "serve/request.h"

using namespace msq;

static RoadNetwork MakeGridNetwork(std::size_t k) {
  RoadNetwork network;
  const double step = k > 1 ? 1.0 / static_cast<double>(k - 1) : 1.0;
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      network.AddNode(Point{c * step, r * step});
  auto id = [k](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * k + c);
  };
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c) {
      if (c + 1 < k) network.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < k) network.AddEdge(id(r, c), id(r + 1, c));
    }
  network.Finalize();
  return network;
}

static std::vector<ObjectId> Ids(const SkylineResult& r) {
  std::vector<ObjectId> ids;
  for (auto& e : r.skyline) ids.push_back(e.object);
  std::sort(ids.begin(), ids.end());
  return ids;
}

namespace {

struct CorpusEntry {
  std::string name;
  std::string data;
};

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out->clear();
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

std::vector<CorpusEntry> LoadCorpus(const std::string& path) {
  std::vector<CorpusEntry> corpus;
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return corpus;
  if (!S_ISDIR(st.st_mode)) {
    CorpusEntry entry;
    entry.name = path;
    if (ReadFileBytes(path, &entry.data)) corpus.push_back(entry);
    return corpus;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return corpus;
  for (dirent* de = ::readdir(dir); de != nullptr; de = ::readdir(dir)) {
    if (de->d_name[0] == '.') continue;
    CorpusEntry entry;
    entry.name = de->d_name;
    if (ReadFileBytes(path + "/" + de->d_name, &entry.data)) {
      corpus.push_back(entry);
    }
  }
  ::closedir(dir);
  std::sort(corpus.begin(), corpus.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return corpus;
}

// Invariants any *accepted* request must satisfy — an accepting parse that
// violates a cap is a parser bug even if nothing crashed.
bool CheckRequestCaps(const serve::ServeRequest& request, std::string* why) {
  if (request.sources.empty() ||
      request.sources.size() > serve::kMaxSources) {
    *why = "sources count out of range";
    return false;
  }
  if (request.lbc_source_index >= request.sources.size()) {
    *why = "lbc_source out of range";
    return false;
  }
  if (request.k > serve::kMaxK) {
    *why = "k above cap";
    return false;
  }
  if (request.id.size() > serve::kMaxIdBytes) {
    *why = "id above cap";
    return false;
  }
  if (request.deadline_ms < 0.0 ||
      request.deadline_ms > serve::kMaxDeadlineMs) {
    *why = "deadline out of range";
    return false;
  }
  for (const Location& source : request.sources) {
    if (!(source.offset >= 0.0)) {  // also catches NaN
      *why = "negative/NaN offset";
      return false;
    }
  }
  return true;
}

// One parser probe: raw JSON under `limits`, then the request schema.
// Returns false (with *why) only on an invariant violation.
bool Probe(const std::string& data, const serve::JsonLimits& limits,
           std::string* why) {
  (void)serve::ParseJson(data, limits);  // must not crash; outcome free
  StatusOr<serve::ServeRequest> request = serve::ParseServeRequestText(data);
  if (request.ok()) return CheckRequestCaps(request.value(), why);
  return true;
}

std::string Mutate(const std::vector<CorpusEntry>& corpus, Rng& rng) {
  static const char* kTokens[] = {
      "{",     "}",       "[",    "]",        ":",       ",",
      "\"",    "\\u0000", "\\",   "1e308",    "-0",      "0.5",
      "null",  "true",    "false", "\"algo\"", "\"ce\"",  "\"sources\"",
      "\"edge\"", "\"limits\"", "\"deadline_ms\"", "\"k\"", "\"id\"",
      "\xff",  "\x00",    "  ",   "\n"};
  std::string data = corpus[rng.NextBounded(corpus.size())].data;
  const std::size_t rounds = 1 + rng.NextBounded(8);
  for (std::size_t i = 0; i < rounds; ++i) {
    switch (rng.NextBounded(6)) {
      case 0:  // flip a byte
        if (!data.empty()) {
          data[rng.NextBounded(data.size())] =
              static_cast<char>(rng.NextBounded(256));
        }
        break;
      case 1: {  // insert a dictionary token
        const char* token = kTokens[rng.NextBounded(std::size(kTokens))];
        data.insert(rng.NextBounded(data.size() + 1), token);
        break;
      }
      case 2:  // delete a span
        if (!data.empty()) {
          const std::size_t at = rng.NextBounded(data.size());
          data.erase(at, 1 + rng.NextBounded(16));
        }
        break;
      case 3:  // truncate
        if (!data.empty()) data.resize(rng.NextBounded(data.size()));
        break;
      case 4: {  // duplicate a span in place
        if (!data.empty()) {
          const std::size_t at = rng.NextBounded(data.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.NextBounded(32),
                                    data.size() - at);
          data.insert(at, data.substr(at, len));
        }
        break;
      }
      default: {  // splice with another corpus entry
        const std::string& other =
            corpus[rng.NextBounded(corpus.size())].data;
        if (!other.empty()) {
          data.insert(rng.NextBounded(data.size() + 1),
                      other.substr(rng.NextBounded(other.size())));
        }
        break;
      }
    }
    if (data.size() > (1u << 17)) data.resize(1u << 17);
  }
  return data;
}

int RunJsonFuzz(const std::string& path, std::size_t iters,
                std::uint64_t seed) {
  const std::vector<CorpusEntry> corpus = LoadCorpus(path);
  if (corpus.empty()) {
    std::fprintf(stderr, "no corpus inputs under %s\n", path.c_str());
    return 2;
  }

  // Phase 1: seed inputs with filename-prefix expectations.
  for (const CorpusEntry& entry : corpus) {
    const StatusOr<serve::ServeRequest> request =
        serve::ParseServeRequestText(entry.data);
    std::string why;
    if (request.ok() && !CheckRequestCaps(request.value(), &why)) {
      std::fprintf(stderr, "%s: accepted but %s\n", entry.name.c_str(),
                   why.c_str());
      return 1;
    }
    const bool expect_ok = entry.name.rfind("ok_", 0) == 0;
    const bool expect_bad = entry.name.rfind("bad_", 0) == 0;
    if (expect_ok && !request.ok()) {
      std::fprintf(stderr, "%s: expected to parse, got: %s\n",
                   entry.name.c_str(),
                   request.status().ToString().c_str());
      return 1;
    }
    if (expect_bad && request.ok()) {
      std::fprintf(stderr, "%s: expected rejection, parsed fine\n",
                   entry.name.c_str());
      return 1;
    }
    (void)serve::ParseJson(entry.data);  // raw parser must not crash either
  }

  // Phase 2: seeded mutation storm over both parsers, with randomized
  // (sometimes tiny) JsonLimits so the cap paths get hit constantly.
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  for (std::size_t i = 0; i < iters; ++i) {
    const std::string mutant = Mutate(corpus, rng);
    serve::JsonLimits limits;
    if (rng.NextBounded(2) == 0) {
      limits.max_bytes = 1 + rng.NextBounded(1u << 17);
      limits.max_depth = 1 + rng.NextBounded(64);
      limits.max_values = 1 + rng.NextBounded(1u << 15);
    }
    std::string why;
    if (!Probe(mutant, limits, &why)) {
      std::fprintf(stderr, "iteration %zu (seed %llu): %s\nmutant (%zu "
                   "bytes): %.200s\n",
                   i, (unsigned long long)seed, why.c_str(), mutant.size(),
                   mutant.c_str());
      return 1;
    }
  }
  std::printf("json fuzz: %zu seed inputs, %zu mutants, no violations "
              "(seed %llu)\n",
              corpus.size(), iters, (unsigned long long)seed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "json") == 0) {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: %s json CORPUS_PATH [ITERS] [SEED]\n", argv[0]);
      return 2;
    }
    const std::size_t iters =
        argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr,
                                                          10))
                 : 2000;
    const std::uint64_t fuzz_seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    return RunJsonFuzz(argv[2], iters, fuzz_seed);
  }
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  Rng rng(seed * 7919 + 13);
  for (int instance = 0; instance < 12; ++instance) {
    RoadNetwork network =
        (instance % 2 == 0)
            ? MakeGridNetwork(3 + rng.NextBounded(4))
            : GenerateNetwork({.node_count = 20 + rng.NextBounded(60),
                               .edge_count = 25 + rng.NextBounded(90),
                               .seed = rng.Next(),
                               .curvature = rng.NextDouble()});
    const std::size_t object_count = 1 + rng.NextBounded(25);
    std::vector<Location> objects;
    while (objects.size() < object_count) {
      const EdgeId edge = (EdgeId)rng.NextBounded(network.edge_count());
      const Dist length = network.EdgeAt(edge).length;
      switch (rng.NextBounded(6)) {
        case 0: objects.push_back({edge, 0.0}); break;
        case 1: objects.push_back({edge, length}); break;
        case 2: objects.push_back({edge, length * 0.5}); break;
        case 3:
          if (!objects.empty()) {
            objects.push_back(objects[rng.NextBounded(objects.size())]);
            break;
          }
          [[fallthrough]];
        default: objects.push_back({edge, rng.NextDouble() * length}); break;
      }
    }
    SkylineQuerySpec spec;
    const std::size_t qn = 1 + rng.NextBounded(4);
    while (spec.sources.size() < qn) {
      if (!objects.empty() && rng.NextBounded(3) == 0) {
        spec.sources.push_back(objects[rng.NextBounded(objects.size())]);
      } else {
        const EdgeId edge = (EdgeId)rng.NextBounded(network.edge_count());
        spec.sources.push_back(
            {edge, rng.NextDouble() * network.EdgeAt(edge).length});
      }
    }

    WorkloadConfig config;
    Workload workload(config, std::move(network), objects);
    auto naive = RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
    auto lbc = RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);
    if (Ids(naive) != Ids(lbc)) {
      std::printf("instance %d diverges\n", instance);
      std::printf("objects (%zu):\n", objects.size());
      for (std::size_t i = 0; i < objects.size(); ++i)
        std::printf("  %zu: edge %u off %.9f\n", i, objects[i].edge,
                    objects[i].offset);
      std::printf("queries:\n");
      for (auto& q : spec.sources)
        std::printf("  edge %u off %.9f\n", q.edge, q.offset);
      std::printf("naive:");
      for (auto& e : naive.skyline) {
        std::printf(" %u[", e.object);
        for (std::size_t d = 0; d < e.vector.size(); ++d)
          std::printf("%s%.9f", d ? "," : "", e.vector[d]);
        std::printf("]");
      }
      std::printf("\nlbc:  ");
      for (auto& e : lbc.skyline) {
        std::printf(" %u[", e.object);
        for (std::size_t d = 0; d < e.vector.size(); ++d)
          std::printf("%s%.9f", d ? "," : "", e.vector[d]);
        std::printf("]");
      }
      std::printf("\n");
      return 1;
    }
  }
  std::printf("seed %llu: all instances agree\n",
              (unsigned long long)seed);
  return 0;
}
