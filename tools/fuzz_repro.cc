// Replays FuzzTest.AllAlgorithmsMatchOracleOnAdversarialInstances for a
// given seed, printing full instance details on any divergence.
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include "common/rng.h"
#include "core/skyline_query.h"
#include "gen/network_gen.h"
#include "gen/workloads.h"

using namespace msq;

static RoadNetwork MakeGridNetwork(std::size_t k) {
  RoadNetwork network;
  const double step = k > 1 ? 1.0 / static_cast<double>(k - 1) : 1.0;
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      network.AddNode(Point{c * step, r * step});
  auto id = [k](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * k + c);
  };
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c) {
      if (c + 1 < k) network.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < k) network.AddEdge(id(r, c), id(r + 1, c));
    }
  network.Finalize();
  return network;
}

static std::vector<ObjectId> Ids(const SkylineResult& r) {
  std::vector<ObjectId> ids;
  for (auto& e : r.skyline) ids.push_back(e.object);
  std::sort(ids.begin(), ids.end());
  return ids;
}

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  Rng rng(seed * 7919 + 13);
  for (int instance = 0; instance < 12; ++instance) {
    RoadNetwork network =
        (instance % 2 == 0)
            ? MakeGridNetwork(3 + rng.NextBounded(4))
            : GenerateNetwork({.node_count = 20 + rng.NextBounded(60),
                               .edge_count = 25 + rng.NextBounded(90),
                               .seed = rng.Next(),
                               .curvature = rng.NextDouble()});
    const std::size_t object_count = 1 + rng.NextBounded(25);
    std::vector<Location> objects;
    while (objects.size() < object_count) {
      const EdgeId edge = (EdgeId)rng.NextBounded(network.edge_count());
      const Dist length = network.EdgeAt(edge).length;
      switch (rng.NextBounded(6)) {
        case 0: objects.push_back({edge, 0.0}); break;
        case 1: objects.push_back({edge, length}); break;
        case 2: objects.push_back({edge, length * 0.5}); break;
        case 3:
          if (!objects.empty()) {
            objects.push_back(objects[rng.NextBounded(objects.size())]);
            break;
          }
          [[fallthrough]];
        default: objects.push_back({edge, rng.NextDouble() * length}); break;
      }
    }
    SkylineQuerySpec spec;
    const std::size_t qn = 1 + rng.NextBounded(4);
    while (spec.sources.size() < qn) {
      if (!objects.empty() && rng.NextBounded(3) == 0) {
        spec.sources.push_back(objects[rng.NextBounded(objects.size())]);
      } else {
        const EdgeId edge = (EdgeId)rng.NextBounded(network.edge_count());
        spec.sources.push_back(
            {edge, rng.NextDouble() * network.EdgeAt(edge).length});
      }
    }

    WorkloadConfig config;
    Workload workload(config, std::move(network), objects);
    auto naive = RunSkylineQuery(Algorithm::kNaive, workload.dataset(), spec);
    auto lbc = RunSkylineQuery(Algorithm::kLbc, workload.dataset(), spec);
    if (Ids(naive) != Ids(lbc)) {
      std::printf("instance %d diverges\n", instance);
      std::printf("objects (%zu):\n", objects.size());
      for (std::size_t i = 0; i < objects.size(); ++i)
        std::printf("  %zu: edge %u off %.9f\n", i, objects[i].edge,
                    objects[i].offset);
      std::printf("queries:\n");
      for (auto& q : spec.sources)
        std::printf("  edge %u off %.9f\n", q.edge, q.offset);
      std::printf("naive:");
      for (auto& e : naive.skyline) {
        std::printf(" %u[", e.object);
        for (std::size_t d = 0; d < e.vector.size(); ++d)
          std::printf("%s%.9f", d ? "," : "", e.vector[d]);
        std::printf("]");
      }
      std::printf("\nlbc:  ");
      for (auto& e : lbc.skyline) {
        std::printf(" %u[", e.object);
        for (std::size_t d = 0; d < e.vector.size(); ++d)
          std::printf("%s%.9f", d ? "," : "", e.vector[d]);
        std::printf("]");
      }
      std::printf("\n");
      return 1;
    }
  }
  std::printf("seed %llu: all instances agree\n",
              (unsigned long long)seed);
  return 0;
}
