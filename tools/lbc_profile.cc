#include <cstdio>
#include "core/lbc.h"
#include "core/query.h"
#include "gen/workloads.h"
using namespace msq;
int main() {
  WorkloadConfig config;
  config.network = PaperNetworkConfig(NetworkClass::kNA, 0.2, 12);
  config.object_density = 0.5;
  Workload w(config);
  const auto spec = w.SampleQuery(12, 1);
  w.ResetBuffers();
  const double t0 = MonotonicSeconds();
  auto r = RunLbc(w.dataset(), spec);
  std::printf("lbc: %.1f ms, skyline %zu, candidates %zu, settled %zu\n",
              (MonotonicSeconds() - t0) * 1e3, r.skyline.size(),
              r.stats.candidate_count, r.stats.settled_nodes);
  return 0;
}
