// Per-query profiler for the skyline algorithms: runs one query with
// tracing enabled and prints the per-phase profile report. Optionally
// exports a Chrome trace_event JSON (chrome://tracing / Perfetto) and a
// JSONL dump of the global metrics registry. Subsumes the old lbc_profile
// and edc_debug one-offs.
//
// Usage:
//   msq_profile [--algo NAME] [--network CA|AU|NA] [--scale F]
//               [--density F] [--sources N] [--seed N]
//               [--trace-out PATH] [--metrics-out PATH]
//               [--plan-out PATH] [--check]
//
// Every run also collects the query's ExecutionPlan (obs/plan.h) and holds
// it to the ReconcilePlan oracle — plan totals must equal QueryStats
// exactly or the run exits non-zero, same as the span reconciliation gate.
// --plan-out writes the plan's JSON (the same shape a served
// "explain":true response carries).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

#include "core/naive.h"
#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/plan.h"
#include "obs/trace.h"

using namespace msq;

namespace {

struct Options {
  Algorithm algo = Algorithm::kLbc;
  NetworkClass network = NetworkClass::kNA;
  double scale = 0.2;
  double density = 0.5;
  std::size_t sources = 4;
  std::uint64_t seed = 1;
  std::string trace_out;
  std::string metrics_out;
  std::string plan_out;
  bool check = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--algo NAME] [--network CA|AU|NA] [--scale F]\n"
      "          [--density F] [--sources N] [--seed N]\n"
      "          [--trace-out PATH] [--metrics-out PATH]\n"
      "          [--plan-out PATH] [--check]\n"
      "algorithms: %s\n",
      argv0, AlgorithmNames().c_str());
}

bool ParseNetwork(const char* s, NetworkClass* out) {
  if (std::strcmp(s, "CA") == 0) {
    *out = NetworkClass::kCA;
  } else if (std::strcmp(s, "AU") == 0) {
    *out = NetworkClass::kAU;
  } else if (std::strcmp(s, "NA") == 0) {
    *out = NetworkClass::kNA;
  } else {
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--algo") == 0) {
      if ((v = value()) == nullptr || !ParseAlgorithm(v, &opts->algo)) {
        return false;
      }
    } else if (std::strcmp(arg, "--network") == 0) {
      if ((v = value()) == nullptr || !ParseNetwork(v, &opts->network)) {
        return false;
      }
    } else if (std::strcmp(arg, "--scale") == 0) {
      if ((v = value()) == nullptr || (opts->scale = std::atof(v)) <= 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--density") == 0) {
      if ((v = value()) == nullptr || (opts->density = std::atof(v)) <= 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--sources") == 0) {
      if ((v = value()) == nullptr || std::atol(v) <= 0) return false;
      opts->sources = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--seed") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->trace_out = v;
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->metrics_out = v;
    } else if (std::strcmp(arg, "--plan-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->plan_out = v;
    } else if (std::strcmp(arg, "--check") == 0) {
      opts->check = true;
    } else {
      return false;
    }
  }
  return true;
}

// Checks the tracer's defining invariant: the profile's self-counter sums
// must equal the query's top-level QueryStats exactly. Prints every
// mismatching measure; returns false on any mismatch so main can exit
// non-zero (the CI gate).
bool ReconcileProfile(const obs::QueryProfile& profile,
                      const QueryStats& stats) {
  const obs::SpanCounters total = profile.TotalCounters();
  bool ok = true;
  auto check = [&ok](const char* what, std::uint64_t from_spans,
                     std::uint64_t from_stats) {
    if (from_spans == from_stats) return;
    std::fprintf(stderr,
                 "reconciliation FAILED: %s — span self-sum %llu != "
                 "QueryStats %llu\n",
                 what, static_cast<unsigned long long>(from_spans),
                 static_cast<unsigned long long>(from_stats));
    ok = false;
  };
  check("network pages (misses)", total.network_misses,
        stats.network_pages);
  check("network page accesses", total.network_hits + total.network_misses,
        stats.network_page_accesses);
  check("index pages (misses)", total.index_misses, stats.index_pages);
  check("index page accesses", total.index_hits + total.index_misses,
        stats.index_page_accesses);
  check("settled nodes", total.settled_nodes, stats.settled_nodes);
  check("cache wavefront hits", total.cache_wavefront_hits,
        stats.cache_wavefront_hits);
  check("cache wavefront misses", total.cache_wavefront_misses,
        stats.cache_wavefront_misses);
  check("cache memo hits", total.cache_memo_hits, stats.cache_memo_hits);
  check("cache memo misses", total.cache_memo_misses,
        stats.cache_memo_misses);
  // The derived pages_per_settled_node figure must reconcile too: the
  // span-side and QueryStats-side derivations divide the same integers
  // through the same function, so they must agree bit-for-bit.
  const double from_spans =
      obs::PagesPerSettledNode(total.network_misses, total.settled_nodes);
  const double from_stats = obs::PagesPerSettledNode(
      stats.network_pages, stats.settled_nodes);
  if (from_spans != from_stats) {
    std::fprintf(stderr,
                 "reconciliation FAILED: pages_per_settled_node — span "
                 "derivation %.17g != QueryStats derivation %.17g\n",
                 from_spans, from_stats);
    ok = false;
  }
  return ok;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 2;
  }

  WorkloadConfig config;
  config.network = PaperNetworkConfig(opts.network, opts.scale, /*seed=*/12);
  config.object_density = opts.density;
  Workload workload(config);
  SkylineQuerySpec spec = workload.SampleQuery(opts.sources, opts.seed);
  workload.ResetBuffers();

  obs::TraceSession trace;
  spec.trace = &trace;
  obs::PlanCollector plan_collector;
  spec.plan = &plan_collector;
  const SkylineResult result =
      RunSkylineQuery(opts.algo, workload.dataset(), spec);
  if (!result.status.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status.message().c_str());
    return 1;
  }

  std::printf("%s on %s (scale %.2f, density %.2f, |Q|=%zu, seed %llu)\n",
              std::string(AlgorithmName(opts.algo)).c_str(),
              NetworkClassName(opts.network).c_str(), opts.scale,
              opts.density, opts.sources,
              static_cast<unsigned long long>(opts.seed));
  std::printf(
      "skyline %zu, candidates %zu, settled %zu, "
      "network pages %llu (%llu accesses), index pages %llu (%llu "
      "accesses), %.2f ms total / %.2f ms initial\n\n",
      result.stats.skyline_size, result.stats.candidate_count,
      result.stats.settled_nodes,
      static_cast<unsigned long long>(result.stats.network_pages),
      static_cast<unsigned long long>(result.stats.network_page_accesses),
      static_cast<unsigned long long>(result.stats.index_pages),
      static_cast<unsigned long long>(result.stats.index_page_accesses),
      result.stats.total_seconds * 1e3, result.stats.initial_seconds * 1e3);

  if (result.profile.has_value()) {
    std::fputs(obs::ProfileReport(*result.profile).c_str(), stdout);
    if (!opts.trace_out.empty() &&
        !WriteFile(opts.trace_out, obs::ToChromeTrace(*result.profile))) {
      return 1;
    }
    // Span-vs-QueryStats reconciliation is the tracer's core invariant
    // (DESIGN.md §9); a mismatch is a bug, so fail the run for CI.
    if (!ReconcileProfile(*result.profile, result.stats)) return 1;
    std::printf("\nprofile reconciles with QueryStats\n");
  } else {
    std::fprintf(stderr, "traced query returned no profile\n");
    return 1;
  }

  // EXPLAIN plan: build it from this run's stats/profile/collector and
  // hold it to the plan oracle (DESIGN.md §17) — the CI gate for the
  // pruning-power counters.
  const obs::ExecutionPlan plan = obs::BuildExecutionPlan(
      AlgorithmName(opts.algo), result.stats,
      result.profile.has_value() ? &*result.profile : nullptr,
      &plan_collector, result.truncated);
  const std::string plan_mismatch = obs::ReconcilePlan(plan, result.stats);
  if (!plan_mismatch.empty()) {
    std::fprintf(stderr, "plan reconciliation FAILED: %s\n",
                 plan_mismatch.c_str());
    return 1;
  }
  std::printf(
      "plan reconciles: dominance %llu performed / %llu avoided, "
      "bounds pruned %llu / examined %llu, mean tightness %.1f%% "
      "(%llu samples), lookups memo %llu / wavefront %llu / computed "
      "%llu\n",
      static_cast<unsigned long long>(plan.dominance_tests),
      static_cast<unsigned long long>(plan.dominance_tests_avoided),
      static_cast<unsigned long long>(plan.bound_pruned),
      static_cast<unsigned long long>(plan.bound_examined),
      plan.mean_tightness_pct(),
      static_cast<unsigned long long>(plan.bound_tightness_samples),
      static_cast<unsigned long long>(plan.tiers.memo_hits),
      static_cast<unsigned long long>(plan.tiers.wavefront_exact),
      static_cast<unsigned long long>(plan.tiers.computed));
  if (!opts.plan_out.empty() &&
      !WriteFile(opts.plan_out, obs::PlanJson(plan) + "\n")) {
    return 1;
  }
  if (!opts.metrics_out.empty() &&
      !WriteFile(opts.metrics_out, obs::MetricsJsonl(obs::GlobalMetrics()))) {
    return 1;
  }

  if (opts.check) {
    workload.ResetBuffers();
    SkylineQuerySpec naive_spec = spec;
    naive_spec.trace = nullptr;
    const SkylineResult oracle = RunNaive(workload.dataset(), naive_spec);
    std::unordered_set<ObjectId> expected;
    for (const SkylineEntry& e : oracle.skyline) expected.insert(e.object);
    std::unordered_set<ObjectId> got;
    for (const SkylineEntry& e : result.skyline) got.insert(e.object);
    if (expected == got) {
      std::printf("\ncheck: matches naive oracle (%zu points)\n",
                  expected.size());
    } else {
      std::printf("\ncheck: MISMATCH — naive %zu points, %s %zu points\n",
                  expected.size(),
                  std::string(AlgorithmName(opts.algo)).c_str(), got.size());
      return 1;
    }
  }
  return 0;
}
