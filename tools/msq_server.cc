// msq_server — the serving front door binary (serve/server.h).
//
// Builds a workload (the paper's CA/AU/NA presets), starts a QueryExecutor
// worker pool with always-on telemetry and an optional cross-query cache,
// and serves skyline queries over TCP: NDJSON persistent connections and
// minimal HTTP (POST /query, GET /metrics|/healthz|/statz) on one port.
//
// Overload behavior: admission watermarks shed with RESOURCE_EXHAUSTED +
// Retry-After; client deadlines propagate into QueryLimits so queue wait
// degrades results to truncated prefixes instead of late full answers.
//
// SIGTERM/SIGINT triggers graceful drain: stop accepting, finish or
// truncate in-flight queries, then flush telemetry (optional --prom-out /
// --flight-out snapshots) and exit 0. A second signal aborts.
//
// SIGUSR1 writes the /debugz postmortem bundle to --debug-out (default
// msq_debugz.json) without disturbing serving — the "grab everything
// before the operator restarts it" hook.
//
// Usage:
//   msq_server [--port N] [--network CA|AU|NA] [--scale F] [--density F]
//              [--workers N] [--cache-mb N] [--seed N]
//              [--max-pending N] [--max-pending-cost F]
//              [--max-connections N] [--max-request-bytes N]
//              [--read-timeout-s F] [--write-timeout-s F]
//              [--default-deadline-ms F]
//              [--fault-transient F] [--fault-persistent F]
//              [--fault-corrupt F] [--fault-write F]
//              [--slow-wall-ms F] [--slow-pages N]
//              [--head-sample-every N]
//              [--duration-s F] [--prom-out PATH] [--flight-out PATH]
//              [--wide-out PATH] [--trace-out PATH] [--debug-out PATH]
//
// --port 0 (default) binds an ephemeral port; the chosen port is printed
// as "listening on http://HOST:PORT" for scripts to parse. --duration-s
// self-drains after the given wall time (smoke tests). The --fault-*
// flags arm seeded storage-fault injection on both page stores — the
// chaos configuration bench_soak drives.
//
// Tracing: --head-sample-every N head-samples every Nth request (detail
// spans + guaranteed retention); --slow-wall-ms/--slow-pages set the tail
// thresholds. At drain, --wide-out dumps the wide-event ring as JSONL and
// --trace-out dumps every retained trace's Chrome-trace export as one
// JSON document ({"traces":[{"trace_id":...,"events":[...]}]}).
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "serve/server.h"

using namespace msq;

namespace {

struct Options {
  int port = 0;
  NetworkClass network = NetworkClass::kCA;
  double scale = 0.2;
  double density = 0.5;
  std::size_t workers = 2;
  std::size_t cache_mb = 0;
  std::uint64_t seed = 12;
  serve::ServerConfig server;
  double fault_transient = 0.0;
  double fault_persistent = 0.0;
  double fault_corrupt = 0.0;
  double fault_write = 0.0;
  double duration_s = 0.0;
  std::string prom_out;
  std::string flight_out;
  std::string wide_out;
  std::string trace_out;
  std::string debug_out = "msq_debugz.json";
  double slow_wall_ms = 0.0;
  std::size_t slow_pages = 0;
  std::size_t head_sample_every = 0;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--network CA|AU|NA] [--scale F] [--density F]\n"
      "          [--workers N] [--cache-mb N] [--seed N]\n"
      "          [--max-pending N] [--max-pending-cost F]\n"
      "          [--max-connections N] [--max-request-bytes N]\n"
      "          [--read-timeout-s F] [--write-timeout-s F]\n"
      "          [--default-deadline-ms F]\n"
      "          [--fault-transient F] [--fault-persistent F]\n"
      "          [--fault-corrupt F] [--fault-write F]\n"
      "          [--slow-wall-ms F] [--slow-pages N]\n"
      "          [--head-sample-every N]\n"
      "          [--duration-s F] [--prom-out PATH] [--flight-out PATH]\n"
      "          [--wide-out PATH] [--trace-out PATH] [--debug-out PATH]\n",
      argv0);
}

bool ParseNetwork(const char* s, NetworkClass* out) {
  if (std::strcmp(s, "CA") == 0) {
    *out = NetworkClass::kCA;
  } else if (std::strcmp(s, "AU") == 0) {
    *out = NetworkClass::kAU;
  } else if (std::strcmp(s, "NA") == 0) {
    *out = NetworkClass::kNA;
  } else {
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    auto next_double = [&](double* out) {
      if ((v = value()) == nullptr) return false;
      *out = std::atof(v);
      return true;
    };
    auto next_size = [&](std::size_t* out) {
      if ((v = value()) == nullptr || std::atoll(v) < 0) return false;
      *out = static_cast<std::size_t>(std::atoll(v));
      return true;
    };
    if (std::strcmp(arg, "--port") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->port = std::atoi(v);
      if (opts->port < 0 || opts->port > 65535) return false;
    } else if (std::strcmp(arg, "--network") == 0) {
      if ((v = value()) == nullptr || !ParseNetwork(v, &opts->network)) {
        return false;
      }
    } else if (std::strcmp(arg, "--scale") == 0) {
      if (!next_double(&opts->scale) || opts->scale <= 0.0) return false;
    } else if (std::strcmp(arg, "--density") == 0) {
      if (!next_double(&opts->density) || opts->density <= 0.0) return false;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!next_size(&opts->workers) || opts->workers == 0) return false;
    } else if (std::strcmp(arg, "--cache-mb") == 0) {
      if (!next_size(&opts->cache_mb)) return false;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--max-pending") == 0) {
      if (!next_size(&opts->server.admission.max_pending) ||
          opts->server.admission.max_pending == 0) {
        return false;
      }
    } else if (std::strcmp(arg, "--max-pending-cost") == 0) {
      if (!next_double(&opts->server.admission.max_pending_cost) ||
          opts->server.admission.max_pending_cost <= 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--max-connections") == 0) {
      if (!next_size(&opts->server.max_connections) ||
          opts->server.max_connections == 0) {
        return false;
      }
    } else if (std::strcmp(arg, "--max-request-bytes") == 0) {
      if (!next_size(&opts->server.max_request_bytes) ||
          opts->server.max_request_bytes == 0) {
        return false;
      }
    } else if (std::strcmp(arg, "--read-timeout-s") == 0) {
      if (!next_double(&opts->server.read_timeout_seconds)) return false;
    } else if (std::strcmp(arg, "--write-timeout-s") == 0) {
      if (!next_double(&opts->server.write_timeout_seconds)) return false;
    } else if (std::strcmp(arg, "--default-deadline-ms") == 0) {
      if (!next_double(&opts->server.default_deadline_ms)) return false;
    } else if (std::strcmp(arg, "--fault-transient") == 0) {
      if (!next_double(&opts->fault_transient)) return false;
    } else if (std::strcmp(arg, "--fault-persistent") == 0) {
      if (!next_double(&opts->fault_persistent)) return false;
    } else if (std::strcmp(arg, "--fault-corrupt") == 0) {
      if (!next_double(&opts->fault_corrupt)) return false;
    } else if (std::strcmp(arg, "--fault-write") == 0) {
      if (!next_double(&opts->fault_write)) return false;
    } else if (std::strcmp(arg, "--duration-s") == 0) {
      if (!next_double(&opts->duration_s)) return false;
    } else if (std::strcmp(arg, "--prom-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->prom_out = v;
    } else if (std::strcmp(arg, "--flight-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->flight_out = v;
    } else if (std::strcmp(arg, "--wide-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->wide_out = v;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->trace_out = v;
    } else if (std::strcmp(arg, "--debug-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->debug_out = v;
    } else if (std::strcmp(arg, "--slow-wall-ms") == 0) {
      if (!next_double(&opts->slow_wall_ms) || opts->slow_wall_ms < 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--slow-pages") == 0) {
      if (!next_size(&opts->slow_pages)) return false;
    } else if (std::strcmp(arg, "--head-sample-every") == 0) {
      if (!next_size(&opts->head_sample_every)) return false;
    } else {
      return false;
    }
  }
  return true;
}

// Signal-safe drain trigger: the handler writes one byte into a pipe the
// main thread blocks on. A second signal hard-exits (stuck drain escape
// hatch).
int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_signal_count = 0;

void OnSignal(int) {
  g_signal_count = g_signal_count + 1;
  if (g_signal_count > 1) _exit(130);
  const char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

// SIGUSR1: request a debugz dump. Counted separately from the drain
// signals (a dump must never escalate to the hard-exit escape hatch);
// the pipe byte distinguishes dump (2) from drain (1).
volatile sig_atomic_t g_debug_requests = 0;

void OnDebugSignal(int) {
  g_debug_requests = g_debug_requests + 1;
  const char byte = 2;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 2;
  }

  WorkloadConfig config;
  config.network =
      PaperNetworkConfig(opts.network, opts.scale, /*seed=*/opts.seed);
  config.object_density = opts.density;
  const bool faults = opts.fault_transient > 0.0 ||
                      opts.fault_persistent > 0.0 ||
                      opts.fault_corrupt > 0.0 || opts.fault_write > 0.0;
  if (faults) {
    FaultInjectionConfig inject;
    inject.seed = opts.seed + 1;
    inject.transient_read_rate = opts.fault_transient;
    inject.persistent_read_rate = opts.fault_persistent;
    inject.corrupt_read_rate = opts.fault_corrupt;
    inject.write_error_rate = opts.fault_write;
    config.fault_injection = inject;
  }
  Workload workload(config);
  if (faults) {
    workload.graph_faults()->Arm();
    workload.index_faults()->Arm();
  }

  obs::TelemetryConfig telemetry;
  telemetry.slow_wall_seconds = opts.slow_wall_ms / 1e3;
  telemetry.slow_page_accesses = opts.slow_pages;
  telemetry.head_sample_every = opts.head_sample_every;
  std::unique_ptr<QueryExecutor> executor;
  if (opts.cache_mb > 0) {
    QueryCacheConfig cache;
    cache.max_bytes = opts.cache_mb * (1u << 20);
    executor = std::make_unique<QueryExecutor>(workload.dataset(),
                                               opts.workers, cache,
                                               telemetry);
  } else {
    executor = std::make_unique<QueryExecutor>(workload.dataset(),
                                               opts.workers, telemetry);
  }

  // Mutations run through the executor's exclusive write barrier: the
  // worker that claims one waits out every in-flight query, applies the
  // workload mutation (which bumps the pager's data_epoch and thereby
  // invalidates cached wavefronts/memos), and only then lets queries flow
  // again. The handler blocks its connection thread, not the pool.
  QueryExecutor* exec = executor.get();
  Workload* wl = &workload;
  opts.server.mutation_handler =
      [exec, wl](const serve::ServeRequest& req) {
        serve::MutationResult out;
        out.status =
            exec->SubmitExclusive([wl, &req, &out] {
                  switch (req.op) {
                    case serve::ServeOp::kUpdateEdge: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument(
                            "edge " + std::to_string(req.edge) +
                            " out of range");
                      }
                      StatusOr<Dist> applied =
                          wl->UpdateEdgeWeight(req.edge, req.length);
                      if (!applied.ok()) return applied.status();
                      out.applied_length = applied.value();
                      return Status();
                    }
                    case serve::ServeOp::kInsertObject: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument(
                            "edge " + std::to_string(req.edge) +
                            " out of range");
                      }
                      if (req.offset >
                          wl->network().EdgeAt(req.edge).length) {
                        return Status::InvalidArgument(
                            "offset beyond edge length");
                      }
                      StatusOr<ObjectId> id = wl->InsertObject(
                          Location{req.edge, req.offset});
                      if (!id.ok()) return id.status();
                      out.object = id.value();
                      return Status();
                    }
                    case serve::ServeOp::kDeleteObject: {
                      StatusOr<bool> removed =
                          wl->DeleteObject(req.object);
                      if (!removed.ok()) return removed.status();
                      out.removed = removed.value();
                      return Status();
                    }
                    case serve::ServeOp::kQuery:
                      break;
                  }
                  return Status::InvalidArgument("not a mutation");
                })
                .get();
        out.data_epoch = wl->dataset().graph_pager->data_epoch();
        return out;
      };

  opts.server.port = static_cast<std::uint16_t>(opts.port);
  serve::MsqServer server(executor.get(), opts.server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "msq_server: %s\n", started.ToString().c_str());
    return 1;
  }

  const obs::BuildInfo& build = obs::GetBuildInfo();
  std::printf("msq_server: %s scale %.2f density %.2f, %zu workers%s%s "
              "(build %s)\n",
              NetworkClassName(opts.network).c_str(), opts.scale,
              opts.density, opts.workers,
              opts.cache_mb > 0 ? ", cache on" : "",
              faults ? ", storage faults armed" : "",
              std::string(build.git_sha).c_str());
  std::printf("listening on http://%s:%u\n", opts.server.host.c_str(),
              server.port());
  std::fflush(stdout);

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGUSR1, OnDebugSignal);

  // Drains pending SIGUSR1 requests: one bundle per signal, written off
  // the signal handler on this (the main) thread.
  int debug_dumps_written = 0;
  auto write_debug_dumps = [&] {
    while (debug_dumps_written < g_debug_requests) {
      ++debug_dumps_written;
      if (WriteFile(opts.debug_out, server.DebugzJson() + "\n")) {
        std::printf("debugz bundle written to %s\n",
                    opts.debug_out.c_str());
        std::fflush(stdout);
      }
    }
  };

  if (opts.duration_s > 0.0) {
    // Smoke mode: serve for the given wall time, then drain.
    const double until = MonotonicSeconds() + opts.duration_s;
    while (MonotonicSeconds() < until && g_signal_count == 0) {
      write_debug_dumps();
      usleep(50 * 1000);
    }
  } else {
    for (;;) {
      char byte = 0;
      const ssize_t n = read(g_signal_pipe[0], &byte, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n > 0 && byte == 2) {
        write_debug_dumps();
        continue;
      }
      break;  // drain signal (or pipe gone): fall through to shutdown
    }
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();

  const serve::AdmissionController& admission = server.admission();
  std::printf("drained: received %llu = rejected %llu + shed %llu + "
              "completed %llu + truncated %llu + failed %llu\n",
              (unsigned long long)admission.received(),
              (unsigned long long)admission.rejected(),
              (unsigned long long)admission.shed(),
              (unsigned long long)admission.completed(),
              (unsigned long long)admission.truncated(),
              (unsigned long long)admission.failed());
  const std::string violation = admission.CheckConservation();
  if (!violation.empty()) {
    std::fprintf(stderr, "msq_server: accounting violation: %s\n",
                 violation.c_str());
    return 1;
  }

  obs::MetricsRegistry& registry = *executor->telemetry().registry();
  if (!opts.prom_out.empty() &&
      !WriteFile(opts.prom_out,
                 obs::PrometheusText(registry,
                                     &executor->telemetry().exemplars()))) {
    return 1;
  }
  if (!opts.wide_out.empty() &&
      !WriteFile(opts.wide_out, server.wide_events().Jsonl())) {
    return 1;
  }
  if (!opts.trace_out.empty()) {
    std::string out = "{\"traces\":[";
    bool first = true;
    for (const obs::RetainedTrace& trace :
         executor->telemetry().trace_store().Snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "\n{\"trace_id\":\"" + trace.TraceIdHex() + "\",\"reason\":\"";
      out += obs::RetainReasonName(trace.reason);
      out += "\",\"events\":" + obs::RetainedTraceChromeJson(trace) + "}";
    }
    out += "\n]}\n";
    if (!WriteFile(opts.trace_out, out)) return 1;
  }
  if (!opts.flight_out.empty()) {
    // Flight dump shares the msq_stats JSON shape (one record per line is
    // not needed here; the array form diffs well in CI artifacts).
    std::string out = "[\n";
    const std::vector<obs::FlightRecord> flight =
        executor->telemetry().flight_recorder().Snapshot();
    for (std::size_t i = 0; i < flight.size(); ++i) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"sequence\":%llu,\"algorithm\":%u,"
                    "\"status_code\":%d,\"truncation\":%u,"
                    "\"wall_seconds\":%.6f}",
                    (unsigned long long)flight[i].sequence,
                    flight[i].algorithm, flight[i].status_code,
                    flight[i].truncation, flight[i].wall_seconds);
      out += buf;
      out += i + 1 < flight.size() ? ",\n" : "\n";
    }
    out += "]\n";
    if (!WriteFile(opts.flight_out, out)) return 1;
  }
  return 0;
}
