// Serving-telemetry driver: runs a mixed CE/EDC/LBC workload through the
// concurrent QueryExecutor with always-on telemetry, then dumps — or
// serves over HTTP — the resulting snapshots: Prometheus text exposition
// of the whole metrics registry (histograms included), the metrics JSONL,
// the flight-recorder ring, and any auto-captured slow-query profiles.
//
// Usage:
//   msq_stats [--network CA|AU|NA] [--scale F] [--density F] [--sources N]
//             [--batch N] [--workers N] [--repeat N] [--seed N]
//             [--slow-wall-ms F] [--slow-pages N] [--head-sample-every N]
//             [--prom-out PATH] [--jsonl-out PATH] [--flight-out PATH]
//             [--serve PORT] [--max-requests N]
//
// --serve binds 127.0.0.1:PORT and serves GET /metrics (Prometheus
// snapshot with retained-trace exemplars), GET /tracez (tail-retained
// traces; ?trace_id= for one Chrome-trace export), and GET /requestz
// (the flight-recorder ring as JSON — executor-level request log; any
// other path also answers with the Prometheus snapshot for backward
// compatibility). --max-requests bounds the loop for smoke tests, 0
// serves until killed.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/skyline_query.h"
#include "serve/socket.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

using namespace msq;

namespace {

struct Options {
  NetworkClass network = NetworkClass::kCA;
  double scale = 0.2;
  double density = 0.5;
  std::size_t sources = 4;
  std::size_t batch = 24;
  std::size_t workers = 2;
  std::size_t repeat = 1;
  std::uint64_t seed = 1;
  double slow_wall_ms = 0.0;
  std::uint64_t slow_pages = 0;
  std::uint64_t head_sample_every = 0;
  std::string prom_out;
  std::string jsonl_out;
  std::string flight_out;
  int serve_port = -1;
  std::size_t max_requests = 0;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--network CA|AU|NA] [--scale F] [--density F]\n"
      "          [--sources N] [--batch N] [--workers N] [--repeat N]\n"
      "          [--seed N] [--slow-wall-ms F] [--slow-pages N]\n"
      "          [--head-sample-every N]\n"
      "          [--prom-out PATH] [--jsonl-out PATH] [--flight-out PATH]\n"
      "          [--serve PORT] [--max-requests N]\n",
      argv0);
}

bool ParseNetwork(const char* s, NetworkClass* out) {
  if (std::strcmp(s, "CA") == 0) {
    *out = NetworkClass::kCA;
  } else if (std::strcmp(s, "AU") == 0) {
    *out = NetworkClass::kAU;
  } else if (std::strcmp(s, "NA") == 0) {
    *out = NetworkClass::kNA;
  } else {
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--network") == 0) {
      if ((v = value()) == nullptr || !ParseNetwork(v, &opts->network)) {
        return false;
      }
    } else if (std::strcmp(arg, "--scale") == 0) {
      if ((v = value()) == nullptr || (opts->scale = std::atof(v)) <= 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--density") == 0) {
      if ((v = value()) == nullptr ||
          (opts->density = std::atof(v)) <= 0.0) {
        return false;
      }
    } else if (std::strcmp(arg, "--sources") == 0) {
      if ((v = value()) == nullptr || std::atol(v) <= 0) return false;
      opts->sources = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--batch") == 0) {
      if ((v = value()) == nullptr || std::atol(v) <= 0) return false;
      opts->batch = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--workers") == 0) {
      if ((v = value()) == nullptr || std::atol(v) <= 0) return false;
      opts->workers = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--repeat") == 0) {
      if ((v = value()) == nullptr || std::atol(v) <= 0) return false;
      opts->repeat = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--seed") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--slow-wall-ms") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->slow_wall_ms = std::atof(v);
    } else if (std::strcmp(arg, "--slow-pages") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->slow_pages =
          static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--head-sample-every") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->head_sample_every =
          static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--prom-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->prom_out = v;
    } else if (std::strcmp(arg, "--jsonl-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->jsonl_out = v;
    } else if (std::strcmp(arg, "--flight-out") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->flight_out = v;
    } else if (std::strcmp(arg, "--serve") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->serve_port = std::atoi(v);
      if (opts->serve_port <= 0 || opts->serve_port > 65535) return false;
    } else if (std::strcmp(arg, "--max-requests") == 0) {
      if ((v = value()) == nullptr) return false;
      opts->max_requests = static_cast<std::size_t>(std::atol(v));
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

std::string FlightJson(const std::vector<obs::FlightRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::FlightRecord& r = records[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"sequence\":%" PRIu64 ",\"spec_digest\":\"%016" PRIx64
        "\",\"trace_id\":\"%016" PRIx64 "%016" PRIx64
        "\",\"algorithm\":\"%s\",\"status_code\":%d,\"truncation\":%u,"
        "\"source_count\":%u,\"skyline_size\":%" PRIu64
        ",\"wall_seconds\":%.6f,\"network_accesses\":%" PRIu64
        ",\"network_pages\":%" PRIu64 ",\"index_accesses\":%" PRIu64
        ",\"settled_nodes\":%" PRIu64 ",\"dominance_tests\":%" PRIu64
        ",\"cache_hits\":%" PRIu64 "}",
        r.sequence, r.spec_digest, r.trace_id_hi, r.trace_id_lo,
        std::string(AlgorithmName(static_cast<Algorithm>(r.algorithm)))
            .c_str(),
        r.status_code, r.truncation, r.source_count, r.skyline_size,
        r.wall_seconds, r.network_hits + r.network_misses, r.network_misses,
        r.index_hits + r.index_misses, r.settled_nodes, r.dominance_tests,
        r.cache_hits);
    out += buf;
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

// Minimal scrape endpoint: answers every request on 127.0.0.1:`port` with
// the current Prometheus snapshot. Single-threaded accept loop; good
// enough for a scraper or `curl`, not a general web server — but robust
// against hostile peers via the serve/socket helpers: SIGPIPE ignored,
// partial writes and EINTR retried, reads bounded in bytes and time so a
// stalled or garbage-streaming client cannot wedge the loop.
int ServeMetrics(obs::MetricsRegistry& registry,
                 const obs::ServingTelemetry& telemetry, int port,
                 std::size_t max_requests) {
  serve::IgnoreSigpipe();
  std::uint16_t bound_port = 0;
  StatusOr<int> listener = serve::ListenTcp(
      "127.0.0.1", static_cast<std::uint16_t>(port), /*backlog=*/8,
      &bound_port);
  if (!listener.ok()) {
    std::fprintf(stderr, "msq_stats: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("serving Prometheus metrics on http://127.0.0.1:%u/metrics\n",
              bound_port);
  std::fflush(stdout);
  for (std::size_t served = 0;
       max_requests == 0 || served < max_requests; ++served) {
    int conn = -1;
    do {
      conn = ::accept(listener.value(), nullptr, nullptr);
    } while (conn < 0 && errno == EINTR);
    if (conn < 0) continue;
    // A scrape client has 5 s to present its request line and 5 s of
    // cumulative stall budget to drain the snapshot.
    (void)serve::SetSocketTimeouts(conn, /*recv_seconds=*/5.0,
                                   /*send_seconds=*/5.0);
    serve::FrameReader reader(conn, /*max_frame_bytes=*/4096);
    const StatusOr<std::string> request = reader.ReadLine();
    if (!request.ok()) {  // stalled, reset, or oversized request line
      ::close(conn);
      continue;
    }
    // Route on the request path; anything unrecognized answers with the
    // Prometheus snapshot (the pre-introspection behavior).
    std::string path;
    {
      const std::string& line = request.value();
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    std::string body;
    std::string content_type = "text/plain; version=0.0.4";
    int status = 200;
    if (path == "/tracez" || path.rfind("/tracez?", 0) == 0) {
      content_type = "application/json";
      const std::string needle = "trace_id=";
      const std::size_t id_start = path.find(needle);
      if (id_start != std::string::npos) {
        std::string trace_id = path.substr(id_start + needle.size());
        const std::size_t amp = trace_id.find('&');
        if (amp != std::string::npos) trace_id.resize(amp);
        std::optional<obs::RetainedTrace> trace =
            telemetry.trace_store().Find(trace_id);
        if (trace.has_value()) {
          body = obs::RetainedTraceChromeJson(*trace);
        } else {
          status = 404;
          body = "{\"error\":\"no retained trace " + trace_id + "\"}";
        }
      } else {
        body = obs::TracezJson(telemetry.trace_store());
      }
    } else if (path == "/requestz") {
      // Executor-level request log: the flight-recorder ring (msq_stats
      // has no serving layer, so no wide events — this is the closest
      // per-request view it owns).
      content_type = "application/json";
      body = FlightJson(telemetry.flight_recorder().Snapshot());
    } else {
      body = obs::PrometheusText(registry, &telemetry.exemplars());
    }
    char header[160];
    const int n = std::snprintf(
        header, sizeof(header),
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        status, status == 200 ? "OK" : "Not Found", content_type.c_str(),
        body.size());
    if (serve::WriteAll(conn, header, static_cast<std::size_t>(n)).ok()) {
      (void)serve::WriteAll(conn, body);  // peer may vanish mid-body
    }
    ::close(conn);
  }
  ::close(listener.value());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 2;
  }

  WorkloadConfig config;
  config.network = PaperNetworkConfig(opts.network, opts.scale, /*seed=*/12);
  config.object_density = opts.density;
  Workload workload(config);

  obs::TelemetryConfig telemetry;
  telemetry.slow_wall_seconds = opts.slow_wall_ms / 1e3;
  telemetry.slow_page_accesses = opts.slow_pages;
  telemetry.head_sample_every = opts.head_sample_every;
  QueryExecutor executor(workload.dataset(), opts.workers, telemetry);

  constexpr Algorithm kMix[] = {Algorithm::kCe, Algorithm::kEdc,
                                Algorithm::kLbc};
  std::vector<QueryRequest> requests;
  requests.reserve(opts.batch);
  for (std::size_t i = 0; i < opts.batch; ++i) {
    QueryRequest request;
    request.algorithm = kMix[i % std::size(kMix)];
    request.spec =
        workload.SampleQuery(opts.sources, opts.seed + 100 + i / 3);
    requests.push_back(request);
  }

  const obs::BuildInfo& build = obs::GetBuildInfo();
  std::printf("msq_stats: %s scale %.2f density %.2f |Q|=%zu — batch %zu x "
              "%zu, %zu workers (build %s)\n",
              NetworkClassName(opts.network).c_str(), opts.scale,
              opts.density, opts.sources, opts.batch, opts.repeat,
              opts.workers, std::string(build.git_sha).c_str());

  std::size_t failures = 0;
  const double start = MonotonicSeconds();
  for (std::size_t r = 0; r < opts.repeat; ++r) {
    for (const SkylineResult& result : executor.RunBatch(requests)) {
      if (!result.status.ok()) ++failures;
    }
  }
  const double wall = MonotonicSeconds() - start;
  // Slow-query captures finish after the batch futures resolve; settle the
  // workers before reading any telemetry.
  executor.Quiesce();
  const std::size_t total = opts.batch * opts.repeat;
  std::printf("%zu queries in %.3f s (%.1f QPS), %zu failed\n\n", total,
              wall, static_cast<double>(total) / wall, failures);

  obs::ServingTelemetry& telem = executor.telemetry();
  obs::MetricsRegistry& registry = *telem.registry();

  // Per-algorithm latency summary straight from the histograms.
  std::printf("%-10s %10s %10s %10s %10s\n", "algo", "count", "p50(ms)",
              "p99(ms)", "mean(ms)");
  registry.ForEachHistogram([](const std::string& name,
                               const obs::Histogram& h) {
    const std::string suffix = std::string(".") + obs::metric::kLatencyUsHist;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      return;
    }
    // exec.<algo>.latency_us_hist -> <algo>
    std::string algo = name.substr(0, name.size() - suffix.size());
    const std::size_t dot = algo.rfind('.');
    if (dot != std::string::npos) algo = algo.substr(dot + 1);
    const obs::Histogram::Snapshot s = h.TakeSnapshot();
    if (s.count == 0) return;
    std::printf("%-10s %10" PRIu64 " %10.2f %10.2f %10.2f\n", algo.c_str(),
                s.count, s.Quantile(0.5) / 1e3, s.Quantile(0.99) / 1e3,
                static_cast<double>(s.sum) /
                    static_cast<double>(s.count) / 1e3);
  });

  const std::vector<obs::FlightRecord> flight =
      telem.flight_recorder().Snapshot();
  std::printf("\nflight recorder: %" PRIu64
              " recorded, %zu retained (capacity %zu)\n",
              telem.flight_recorder().total_recorded(), flight.size(),
              telem.flight_recorder().capacity());

  const std::vector<obs::SlowQueryRecord> slow = telem.SlowQueries();
  if (!slow.empty()) {
    std::printf("\n%zu slow queries auto-captured:\n", slow.size());
    for (const obs::SlowQueryRecord& record : slow) {
      std::printf(
          "-- seq %" PRIu64 " %s digest %016" PRIx64
          " wall %.2f ms (recapture %.2f ms) --\n",
          record.summary.sequence,
          std::string(AlgorithmName(
                          static_cast<Algorithm>(record.summary.algorithm)))
              .c_str(),
          record.summary.spec_digest, record.summary.wall_seconds * 1e3,
          record.recapture_wall_seconds * 1e3);
      std::fputs(obs::ProfileReport(record.profile).c_str(), stdout);
    }
  }

  const std::vector<obs::RetainedTrace> retained =
      telem.trace_store().Snapshot();
  if (!retained.empty()) {
    std::printf("\n%zu traces tail-retained (of %" PRIu64 " total):\n",
                retained.size(), telem.trace_store().retained_total());
    for (const obs::RetainedTrace& trace : retained) {
      std::printf("  %s %s reason=%s wall %.2f ms\n",
                  trace.TraceIdHex().c_str(), trace.algorithm.c_str(),
                  std::string(obs::RetainReasonName(trace.reason)).c_str(),
                  trace.wall_seconds * 1e3);
    }
  }

  if (!opts.prom_out.empty() &&
      !WriteFile(opts.prom_out,
                 obs::PrometheusText(registry, &telem.exemplars()))) {
    return 1;
  }
  if (!opts.jsonl_out.empty() &&
      !WriteFile(opts.jsonl_out, obs::MetricsJsonl(registry))) {
    return 1;
  }
  if (!opts.flight_out.empty() &&
      !WriteFile(opts.flight_out, FlightJson(flight))) {
    return 1;
  }

  if (opts.serve_port > 0) {
    return ServeMetrics(registry, telem, opts.serve_port,
                        opts.max_requests);
  }
  return failures == 0 ? 0 : 1;
}
