#!/usr/bin/env python3
"""Schema checkers for the telemetry artifacts CI uploads.

Validates the three dump formats the serving stack writes so a format
regression fails the build instead of silently producing artifacts no
tool can load:

  --chrome-trace FILE   Chrome trace_event JSON: a bare array of complete
                        ("ph":"X") events with name/cat/ts/dur fields
                        (msq_profile --trace-out).
  --trace-dump FILE     Retained-trace dump: {"traces":[{"trace_id",
                        "reason","events":[...]}]} where every wrapped
                        event array is a valid Chrome trace and every
                        event's args.trace_id matches its wrapper
                        (msq_server --trace-out, MSQ_SOAK_TRACE_OUT).
  --wide-events FILE    Canonical wide events, one JSON object per line
                        (msq_server --wide-out, MSQ_SOAK_WIDE_OUT,
                        GET /requestz bodies are the same objects).

Stdlib only; exits non-zero with a pointed message on the first
violation. Flags may be combined in one invocation.
"""
import argparse
import json
import re
import sys

TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
RETAIN_REASONS = {"error", "truncated", "slow", "head_sampled"}
OUTCOMES = {"rejected", "shed", "completed", "truncated", "failed"}
WIDE_STAGES = (
    "queue_ms",
    "parse_ms",
    "execute_ms",
    "serialize_ms",
    "write_ms",
    "total_ms",
)
WIDE_COUNTERS = (
    "network_page_accesses",
    "index_page_accesses",
    "cache_hits",
    "settled_nodes",
    "skyline_size",
    "returned",
    "sequence",
)


def fail(path, message):
    sys.exit(f"validate_telemetry: {path}: {message}")


def check_chrome_events(path, events, expect_trace_id=None):
    if not isinstance(events, list):
        fail(path, f"expected a JSON array of events, got {type(events).__name__}")
    if not events:
        fail(path, "empty event array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"event {i} is not an object")
        for key, kind in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(event.get(key), kind):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
        if event["ph"] != "X":
            fail(path, f"event {i}: unsupported phase {event['ph']!r}")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
            if event[key] < 0:
                fail(path, f"event {i}: negative \"{key}\"")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            fail(path, f"event {i}: \"args\" is not an object")
        if expect_trace_id is not None:
            got = (args or {}).get("trace_id")
            if got != expect_trace_id:
                fail(
                    path,
                    f"event {i}: args.trace_id {got!r} != wrapper "
                    f"trace_id {expect_trace_id!r}",
                )
    return len(events)


def check_chrome_trace(path):
    with open(path) as f:
        events = json.load(f)
    n = check_chrome_events(path, events)
    print(f"validate_telemetry: {path}: {n} chrome events OK")


def check_trace_dump(path):
    with open(path) as f:
        dump = json.load(f)
    if not isinstance(dump, dict) or not isinstance(dump.get("traces"), list):
        fail(path, 'expected {"traces": [...]}')
    total_events = 0
    for i, trace in enumerate(dump["traces"]):
        if not isinstance(trace, dict):
            fail(path, f"trace {i} is not an object")
        trace_id = trace.get("trace_id")
        if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
            fail(path, f"trace {i}: bad trace_id {trace_id!r}")
        if trace.get("reason") not in RETAIN_REASONS:
            fail(path, f"trace {i}: bad reason {trace.get('reason')!r}")
        events = trace.get("events")
        total_events += check_chrome_events(path, events, trace_id)
        names = {event["name"] for event in events}
        # The synthetic request/queue_wait pair is what makes the export a
        # full server-side timeline; its absence means the wrapper broke.
        for required in ("request", "queue_wait"):
            if required not in names:
                fail(path, f"trace {i}: missing \"{required}\" span")
    print(
        f"validate_telemetry: {path}: {len(dump['traces'])} traces, "
        f"{total_events} events OK"
    )


def check_wide_events(path):
    count = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(path, f"line {lineno}: not JSON ({e})")
            if not isinstance(event, dict):
                fail(path, f"line {lineno}: not an object")
            trace_id = event.get("trace_id")
            if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
                fail(path, f"line {lineno}: bad trace_id {trace_id!r}")
            if event.get("outcome") not in OUTCOMES:
                fail(path, f"line {lineno}: bad outcome {event.get('outcome')!r}")
            for key in ("id", "algo"):
                if not isinstance(event.get(key), str):
                    fail(path, f"line {lineno}: missing/mistyped \"{key}\"")
            for key in ("sampled", "trace_retained"):
                if not isinstance(event.get(key), bool):
                    fail(path, f"line {lineno}: missing/mistyped \"{key}\"")
            if not isinstance(event.get("http_status"), int):
                fail(path, f"line {lineno}: missing/mistyped \"http_status\"")
            for key in WIDE_STAGES:
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(path, f"line {lineno}: missing/negative \"{key}\"")
            for key in WIDE_COUNTERS:
                value = event.get(key)
                if not isinstance(value, int) or value < 0:
                    fail(path, f"line {lineno}: missing/negative \"{key}\"")
            # Stages never exceed the request's total span.
            stage_sum = sum(event[k] for k in WIDE_STAGES[:-1])
            if stage_sum > event["total_ms"] + 1.0:  # 1 ms timing slack
                fail(
                    path,
                    f"line {lineno}: stage sum {stage_sum:.3f} ms exceeds "
                    f"total_ms {event['total_ms']:.3f}",
                )
            count += 1
    if count == 0:
        fail(path, "no wide events")
    print(f"validate_telemetry: {path}: {count} wide events OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chrome-trace", action="append", default=[])
    parser.add_argument("--trace-dump", action="append", default=[])
    parser.add_argument("--wide-events", action="append", default=[])
    args = parser.parse_args()
    if not (args.chrome_trace or args.trace_dump or args.wide_events):
        parser.error("nothing to validate")
    for path in args.chrome_trace:
        check_chrome_trace(path)
    for path in args.trace_dump:
        check_trace_dump(path)
    for path in args.wide_events:
        check_wide_events(path)


if __name__ == "__main__":
    main()
