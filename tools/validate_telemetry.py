#!/usr/bin/env python3
"""Schema checkers for the telemetry artifacts CI uploads.

Validates the three dump formats the serving stack writes so a format
regression fails the build instead of silently producing artifacts no
tool can load:

  --chrome-trace FILE   Chrome trace_event JSON: a bare array of complete
                        ("ph":"X") events with name/cat/ts/dur fields
                        (msq_profile --trace-out).
  --trace-dump FILE     Retained-trace dump: {"traces":[{"trace_id",
                        "reason","events":[...]}]} where every wrapped
                        event array is a valid Chrome trace and every
                        event's args.trace_id matches its wrapper
                        (msq_server --trace-out, MSQ_SOAK_TRACE_OUT).
  --wide-events FILE    Canonical wide events, one JSON object per line
                        (msq_server --wide-out, MSQ_SOAK_WIDE_OUT,
                        GET /requestz bodies are the same objects).
  --explain FILE        One ExecutionPlan JSON object (msq_profile
                        --plan-out; also the "plan" field of a served
                        "explain":true response and each plans[].plan
                        entry of GET /explainz).
  --debugz FILE         The /debugz postmortem bundle (GET /debugz,
                        msq_server --debug-out on SIGUSR1): every
                        section present, internally consistent flight/
                        explain rings, metrics re-framed as an array.

Stdlib only; exits non-zero with a pointed message on the first
violation. Flags may be combined in one invocation.
"""
import argparse
import json
import re
import sys

TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
RETAIN_REASONS = {"error", "truncated", "slow", "head_sampled"}
OUTCOMES = {"rejected", "shed", "completed", "truncated", "failed"}
WIDE_STAGES = (
    "queue_ms",
    "parse_ms",
    "execute_ms",
    "serialize_ms",
    "write_ms",
    "total_ms",
)
WIDE_COUNTERS = (
    "network_page_accesses",
    "index_page_accesses",
    "cache_hits",
    "settled_nodes",
    "skyline_size",
    "returned",
    "sequence",
)


def fail(path, message):
    sys.exit(f"validate_telemetry: {path}: {message}")


def check_chrome_events(path, events, expect_trace_id=None):
    if not isinstance(events, list):
        fail(path, f"expected a JSON array of events, got {type(events).__name__}")
    if not events:
        fail(path, "empty event array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"event {i} is not an object")
        for key, kind in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(event.get(key), kind):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
        if event["ph"] != "X":
            fail(path, f"event {i}: unsupported phase {event['ph']!r}")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
            if event[key] < 0:
                fail(path, f"event {i}: negative \"{key}\"")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(path, f"event {i} missing/mistyped \"{key}\"")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            fail(path, f"event {i}: \"args\" is not an object")
        if expect_trace_id is not None:
            got = (args or {}).get("trace_id")
            if got != expect_trace_id:
                fail(
                    path,
                    f"event {i}: args.trace_id {got!r} != wrapper "
                    f"trace_id {expect_trace_id!r}",
                )
    return len(events)


def check_chrome_trace(path):
    with open(path) as f:
        events = json.load(f)
    n = check_chrome_events(path, events)
    print(f"validate_telemetry: {path}: {n} chrome events OK")


def check_trace_dump(path):
    with open(path) as f:
        dump = json.load(f)
    if not isinstance(dump, dict) or not isinstance(dump.get("traces"), list):
        fail(path, 'expected {"traces": [...]}')
    total_events = 0
    for i, trace in enumerate(dump["traces"]):
        if not isinstance(trace, dict):
            fail(path, f"trace {i} is not an object")
        trace_id = trace.get("trace_id")
        if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
            fail(path, f"trace {i}: bad trace_id {trace_id!r}")
        if trace.get("reason") not in RETAIN_REASONS:
            fail(path, f"trace {i}: bad reason {trace.get('reason')!r}")
        events = trace.get("events")
        total_events += check_chrome_events(path, events, trace_id)
        names = {event["name"] for event in events}
        # The synthetic request/queue_wait pair is what makes the export a
        # full server-side timeline; its absence means the wrapper broke.
        for required in ("request", "queue_wait"):
            if required not in names:
                fail(path, f"trace {i}: missing \"{required}\" span")
    print(
        f"validate_telemetry: {path}: {len(dump['traces'])} traces, "
        f"{total_events} events OK"
    )


def check_wide_events(path):
    count = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(path, f"line {lineno}: not JSON ({e})")
            if not isinstance(event, dict):
                fail(path, f"line {lineno}: not an object")
            trace_id = event.get("trace_id")
            if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
                fail(path, f"line {lineno}: bad trace_id {trace_id!r}")
            if event.get("outcome") not in OUTCOMES:
                fail(path, f"line {lineno}: bad outcome {event.get('outcome')!r}")
            for key in ("id", "algo"):
                if not isinstance(event.get(key), str):
                    fail(path, f"line {lineno}: missing/mistyped \"{key}\"")
            for key in ("sampled", "trace_retained"):
                if not isinstance(event.get(key), bool):
                    fail(path, f"line {lineno}: missing/mistyped \"{key}\"")
            if not isinstance(event.get("http_status"), int):
                fail(path, f"line {lineno}: missing/mistyped \"http_status\"")
            for key in WIDE_STAGES:
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(path, f"line {lineno}: missing/negative \"{key}\"")
            for key in WIDE_COUNTERS:
                value = event.get(key)
                if not isinstance(value, int) or value < 0:
                    fail(path, f"line {lineno}: missing/negative \"{key}\"")
            # Stages never exceed the request's total span.
            stage_sum = sum(event[k] for k in WIDE_STAGES[:-1])
            if stage_sum > event["total_ms"] + 1.0:  # 1 ms timing slack
                fail(
                    path,
                    f"line {lineno}: stage sum {stage_sum:.3f} ms exceeds "
                    f"total_ms {event['total_ms']:.3f}",
                )
            count += 1
    if count == 0:
        fail(path, "no wide events")
    print(f"validate_telemetry: {path}: {count} wide events OK")


ALGORITHMS = {"naive", "ce", "edc", "edc-inc", "lbc", "lbc-noplb"}
PLAN_COUNTERS = (
    "settled_nodes",
    "candidates",
    "skyline_size",
)


def check_plan_object(path, plan, where):
    """One ExecutionPlan object (the --plan-out file, a served "plan"
    field, or an /explainz plans[].plan entry)."""
    if not isinstance(plan, dict):
        fail(path, f"{where}: plan is not an object")
    if plan.get("algorithm") not in ALGORITHMS:
        fail(path, f"{where}: bad algorithm {plan.get('algorithm')!r}")
    if not isinstance(plan.get("truncated"), bool):
        fail(path, f"{where}: missing/mistyped \"truncated\"")
    if not isinstance(plan.get("total_seconds"), (int, float)):
        fail(path, f"{where}: missing/mistyped \"total_seconds\"")
    dom = plan.get("dominance_tests")
    if not isinstance(dom, dict):
        fail(path, f"{where}: missing \"dominance_tests\"")
    for key in ("performed", "avoided"):
        if not isinstance(dom.get(key), int) or dom[key] < 0:
            fail(path, f"{where}: missing/negative dominance_tests.{key}")
    bounds = plan.get("bounds")
    if not isinstance(bounds, dict):
        fail(path, f"{where}: missing \"bounds\"")
    for key in ("pruned", "examined"):
        if not isinstance(bounds.get(key), int) or bounds[key] < 0:
            fail(path, f"{where}: missing/negative bounds.{key}")
    tightness = bounds.get("tightness")
    if not isinstance(tightness, dict):
        fail(path, f"{where}: missing bounds.tightness")
    samples = tightness.get("samples")
    if not isinstance(samples, int) or samples < 0:
        fail(path, f"{where}: missing/negative tightness.samples")
    histogram = tightness.get("histogram")
    if not isinstance(histogram, list):
        fail(path, f"{where}: tightness.histogram is not an array")
    bucket_total = 0
    for b, bucket in enumerate(histogram):
        for key in ("le", "count"):
            if not isinstance(bucket.get(key), int):
                fail(path, f"{where}: histogram bucket {b} missing \"{key}\"")
        bucket_total += bucket["count"]
    # The histogram and the independently counted samples must agree —
    # the same invariant ReconcilePlan enforces in-process.
    if bucket_total != samples:
        fail(
            path,
            f"{where}: histogram buckets sum to {bucket_total}, "
            f"tightness.samples is {samples}",
        )
    mean = tightness.get("mean_pct")
    if not isinstance(mean, (int, float)) or mean < 0 or mean > 100:
        fail(path, f"{where}: tightness.mean_pct {mean!r} outside [0,100]")
    pages = plan.get("pages")
    if not isinstance(pages, dict):
        fail(path, f"{where}: missing \"pages\"")
    for key in ("network_accesses", "index_accesses"):
        if not isinstance(pages.get(key), int) or pages[key] < 0:
            fail(path, f"{where}: missing/negative pages.{key}")
    cache = plan.get("cache")
    if not isinstance(cache, dict) or not isinstance(
        cache.get("lookup_tiers"), dict
    ):
        fail(path, f"{where}: missing cache.lookup_tiers")
    for key in ("memo", "wavefront", "computed"):
        tier = cache["lookup_tiers"].get(key)
        if not isinstance(tier, int) or tier < 0:
            fail(path, f"{where}: missing/negative lookup_tiers.{key}")
    for key in PLAN_COUNTERS:
        if not isinstance(plan.get(key), int) or plan[key] < 0:
            fail(path, f"{where}: missing/negative \"{key}\"")
    for section, item_keys in (
        ("phases", ("name", "seconds")),
        ("sources", ("source", "settled_nodes", "radius")),
    ):
        items = plan.get(section)
        if not isinstance(items, list):
            fail(path, f"{where}: \"{section}\" is not an array")
        for i, item in enumerate(items):
            for key in item_keys:
                if key not in item:
                    fail(path, f"{where}: {section}[{i}] missing \"{key}\"")


def check_explain(path):
    with open(path) as f:
        plan = json.load(f)
    check_plan_object(path, plan, "plan")
    print(
        f"validate_telemetry: {path}: {plan['algorithm']} plan OK "
        f"({len(plan['phases'])} phases, {len(plan['sources'])} sources)"
    )


def check_debugz(path):
    with open(path) as f:
        bundle = json.load(f)
    if not isinstance(bundle, dict):
        fail(path, "bundle is not an object")
    for section in (
        "build",
        "config",
        "healthz",
        "statz",
        "flight",
        "traces",
        "requests",
        "metrics",
        "explain",
    ):
        if section not in bundle:
            fail(path, f"missing \"{section}\" section")
    healthz = bundle["healthz"]
    if healthz.get("status") != "ok":
        fail(path, f"healthz.status {healthz.get('status')!r}")
    if not isinstance(healthz.get("draining"), bool):
        fail(path, "healthz missing \"draining\"")
    admission = healthz.get("admission")
    if not isinstance(admission, dict) or "pending" not in admission:
        fail(path, "healthz missing admission occupancy")
    config = bundle["config"]
    for key in ("host", "port", "workers"):
        if key not in config:
            fail(path, f"config missing \"{key}\"")
    flight = bundle["flight"]
    records = flight.get("records")
    if not isinstance(records, list):
        fail(path, "flight.records is not an array")
    if not isinstance(flight.get("total"), int) or flight["total"] < len(
        records
    ):
        fail(path, "flight.total smaller than the ring snapshot")
    for i, record in enumerate(records):
        if record.get("algo") not in ALGORITHMS:
            fail(path, f"flight record {i}: bad algo {record.get('algo')!r}")
        for key in ("sequence", "dominance_tests", "settled_nodes"):
            if not isinstance(record.get(key), (int, float)):
                fail(path, f"flight record {i}: missing \"{key}\"")
    metrics = bundle["metrics"]
    if not isinstance(metrics, list) or not metrics:
        fail(path, "metrics is not a non-empty array")
    for i, metric in enumerate(metrics):
        if not isinstance(metric, dict):
            fail(path, f"metrics[{i}] is not an object")
        # The registry snapshot leads with a build_info line that carries
        # identity fields instead of a series name.
        if metric.get("type") == "build_info":
            continue
        if "name" not in metric:
            fail(path, f"metrics[{i}] missing \"name\"")
    explain = bundle["explain"]
    if not isinstance(explain.get("pruning_efficiency"), list):
        fail(path, "explain.pruning_efficiency is not an array")
    plans = explain.get("plans")
    if not isinstance(plans, list):
        fail(path, "explain.plans is not an array")
    for i, entry in enumerate(plans):
        if not isinstance(entry.get("sequence"), int):
            fail(path, f"explain.plans[{i}] missing \"sequence\"")
        check_plan_object(path, entry.get("plan"), f"explain.plans[{i}]")
    print(
        f"validate_telemetry: {path}: debugz bundle OK "
        f"({len(records)} flight records, {len(plans)} plans, "
        f"{len(metrics)} metrics)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chrome-trace", action="append", default=[])
    parser.add_argument("--trace-dump", action="append", default=[])
    parser.add_argument("--wide-events", action="append", default=[])
    parser.add_argument("--explain", action="append", default=[])
    parser.add_argument("--debugz", action="append", default=[])
    args = parser.parse_args()
    if not (
        args.chrome_trace
        or args.trace_dump
        or args.wide_events
        or args.explain
        or args.debugz
    ):
        parser.error("nothing to validate")
    for path in args.chrome_trace:
        check_chrome_trace(path)
    for path in args.trace_dump:
        check_trace_dump(path)
    for path in args.wide_events:
        check_wide_events(path)
    for path in args.explain:
        check_explain(path)
    for path in args.debugz:
        check_debugz(path)


if __name__ == "__main__":
    main()
